// Blocking client for the ICGMM wire protocol: one TCP connection per
// Client, synchronous request/reply helpers, and explicit send/await
// halves so callers can pipeline several ACCESS_BATCH frames before
// collecting replies (the server guarantees in-order replies per
// connection). ClientPool keeps N connections to one server for
// multi-threaded drivers.
//
// All failures (connect/socket errors, unexpected EOF, malformed or
// out-of-sequence replies, server ERROR frames) surface as
// std::runtime_error / std::system_error.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace icgmm::net {

class Client {
 public:
  /// Disconnected client; connect() to use.
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Blocking TCP connect (IPv4 dotted-quad or "localhost"). Throws on
  /// failure.
  static Client connect(const std::string& host, std::uint16_t port);

  bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  // --- synchronous round trips ---------------------------------------------
  // Replies are correlated purely by order, so a synchronous RPC issued
  // with ACCESS replies still outstanding first drains the pipeline
  // (drain_outstanding) — the RPC's reply is then the next frame on the
  // wire. Earlier versions threw instead; draining makes mid-pipeline
  // STATS/FLUSH safe (monitoring pollers, admin tools) at the cost of
  // discarding the drained ACCESS replies' contents.

  /// PING/PONG round trip; throws if the server misbehaves.
  void ping();
  AccessReply access(std::span<const WireAccess> accesses);
  StatsReply stats();
  ModelInfoReply model_info();
  /// Admin: zero the server's statistics counters.
  void flush();

  // --- pipelining ------------------------------------------------------------
  // send_access() writes one ACCESS_BATCH frame and returns immediately;
  // await_access_reply() blocks for the oldest outstanding reply. Replies
  // arrive in send order. Callers bound their own window (the bench and
  // loadgen keep <= depth outstanding).

  /// Returns the frame's sequence number.
  std::uint32_t send_access(std::span<const WireAccess> accesses);
  AccessReply await_access_reply();
  std::uint32_t outstanding() const noexcept { return outstanding_; }

  /// Awaits (and discards) every outstanding ACCESS reply; returns how
  /// many were drained. The sync RPCs call this implicitly; drivers that
  /// need the replies' contents must await them individually first.
  std::uint32_t drain_outstanding();

 private:
  /// Reads until one complete frame is buffered; returns owned bytes.
  std::vector<std::uint8_t> recv_frame();
  void send_all(const std::vector<std::uint8_t>& bytes);
  /// Receives a frame, requiring `type` with sequence `seq`; decodes a
  /// server ERROR frame into an exception.
  std::vector<std::uint8_t> expect(MsgType type, std::uint32_t seq,
                                   Frame& frame);

  int fd_ = -1;
  std::uint32_t next_seq_ = 1;
  std::uint32_t next_reply_seq_ = 1;
  std::uint32_t outstanding_ = 0;
  std::vector<std::uint8_t> rx_;  ///< partial inbound stream
  std::vector<std::uint8_t> tx_;  ///< scratch encode buffer
};

/// Sleeps until `deadline` with sub-interval precision: coarse
/// sleep_until to ~1ms before the deadline, then a spin on the steady
/// clock. Raw sleep_until alone wakes at scheduler granularity (often
/// 50µs–1ms+), which makes open-loop pacing coarse above ~50k QPS — the
/// achieved rate silently sags below the target. The spin window costs at
/// most ~1ms of one core per launch, which an open-loop driver is
/// dedicating to pacing anyway. No-op when the deadline already passed.
void precise_sleep_until(std::chrono::steady_clock::time_point deadline);

/// How replay_stream paces and windows one connection's request stream.
struct ReplayOptions {
  std::size_t batch = 64;
  /// Max ACCESS_BATCH frames in flight (closed-loop window).
  std::size_t pipeline = 1;
  /// Send an admin FLUSH after exactly this many requests (0 = never) —
  /// the server-side warm-up discard. Batches are split so the boundary
  /// is exact, and the window is drained first so the FLUSH lands between
  /// the last warm-up request and the first measured one.
  std::size_t flush_after = 0;
  /// Open-loop pacing: time between batch launches (0 = closed loop).
  std::chrono::nanoseconds batch_interval{0};
  /// Recorded-timing pacing: per-request send offsets in nanoseconds,
  /// parallel to the stream (a recorded capture's arrival_ns column).
  /// When non-empty, each batch launches at start + (offset of its first
  /// request - offset of the stream's first request) — reproducing the
  /// captured inter-arrival spacing instead of a fixed interval. Takes
  /// precedence over batch_interval. The caller keeps the offsets alive
  /// for the duration of the replay.
  std::span<const std::uint64_t> send_offsets_ns;
};

/// Per-batch completion hook: the reply, the batch's reference time (the
/// *scheduled* send time in open loop — queueing delay counts toward
/// latency, no coordinated omission — or the actual send time in closed
/// loop), and the number of requests the batch carried.
using ReplayBatchHook =
    std::function<void(const AccessReply&,
                       std::chrono::steady_clock::time_point ref,
                       std::uint32_t count)>;

/// Replays `stream` through `client` in order with a bounded in-flight
/// window — THE closed/open-loop driver shared by icgmm_loadgen,
/// bench/throughput_net, and the end-to-end equivalence tests, so all
/// three exercise one code path. Returns the number of requests whose
/// replies were received. Exceptions from the client propagate.
std::uint64_t replay_stream(Client& client,
                            std::span<const WireAccess> stream,
                            const ReplayOptions& opts,
                            const ReplayBatchHook& on_reply = {});

/// Contiguous chunk `index` of `parts` over a request stream, remainder
/// spread over the first chunks — the per-connection split every
/// multi-connection driver uses (loadgen, net bench). Generic so a
/// side array parallel to the stream (recorded send offsets) splits
/// identically.
template <typename T>
std::span<const T> stream_chunk(std::span<const T> stream, std::size_t index,
                                std::size_t parts) {
  const std::size_t base = stream.size() / parts;
  const std::size_t extra = stream.size() % parts;
  const std::size_t first = index * base + (index < extra ? index : extra);
  return stream.subspan(first, base + (index < extra ? 1 : 0));
}

inline std::span<const WireAccess> stream_chunk(
    std::span<const WireAccess> stream, std::size_t index,
    std::size_t parts) {
  return stream_chunk<WireAccess>(stream, index, parts);
}

/// Fixed-size pool of connections to one server. acquire() hands out an
/// exclusive lease (round-robin over idle connections, blocking when all
/// are leased); the lease reconnects transparently if its connection died.
class ClientPool {
 public:
  ClientPool(std::string host, std::uint16_t port, std::size_t size);

  class Lease {
   public:
    Lease(ClientPool& pool, std::size_t slot) : pool_(&pool), slot_(slot) {}
    ~Lease() { release(); }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), slot_(other.slot_) {
      other.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    Client& operator*() const { return pool_->clients_[slot_]; }
    Client* operator->() const { return &pool_->clients_[slot_]; }

   private:
    void release();
    ClientPool* pool_;
    std::size_t slot_;
  };

  /// Blocks until a connection is free; connects lazily on first use.
  Lease acquire();

  std::size_t size() const noexcept { return clients_.size(); }

 private:
  friend class Lease;

  std::string host_;
  std::uint16_t port_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Client> clients_;
  std::vector<bool> leased_;
};

}  // namespace icgmm::net
