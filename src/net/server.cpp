#include "net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <thread>
#include <utility>

namespace icgmm::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// Per-connection state. The I/O thread owns `in` (the partial byte
/// stream) exclusively; everything under `mu` is shared between the I/O
/// thread and whichever worker currently has the connection scheduled.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;

  /// Partial inbound byte stream; I/O thread only.
  std::vector<std::uint8_t> in;

  std::mutex mu;
  // --- guarded by mu ---
  std::deque<std::vector<std::uint8_t>> inbox;  ///< complete frames, owned
  std::vector<std::uint8_t> out;                ///< pending reply bytes
  std::size_t out_off = 0;
  bool scheduled = false;   ///< queued or being drained by a worker
  bool want_write = false;  ///< EPOLLOUT armed
  bool eof = false;         ///< peer FIN seen; close once drained
  bool dead = false;        ///< deregistered; drop work, never write

  bool drained() const {  // call with mu held
    return inbox.empty() && !scheduled && out_off >= out.size();
  }
};

Server::Server(runtime::Runtime& rt, ServerConfig cfg)
    : rt_(rt), cfg_(cfg) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::logic_error("Server::start: already started");
  try {
    start_impl();
  } catch (...) {
    // Partial setup (e.g. bind EADDRINUSE after socket()) must not leak
    // fds — a caller retrying ports would otherwise creep toward EMFILE.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    throw;
  }
}

void Server::start_impl() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(cfg_.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, cfg_.listen_backlog) < 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  workers_.reserve(cfg_.workers);
  for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      queue_.push_back(nullptr);  // stop tokens
    }
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(close_mu_);
    close_queue_.clear();  // entries are still in conns_, closed below
  }
  closed_.fetch_add(conns_.size(), std::memory_order_relaxed);
  conns_.clear();  // destructors close the sockets
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  started_ = false;
}

ServerStats Server::stats() const noexcept {
  return {.connections_accepted = accepted_.load(std::memory_order_relaxed),
          .connections_closed = closed_.load(std::memory_order_relaxed),
          .frames_served = frames_.load(std::memory_order_relaxed),
          .requests_served = requests_.load(std::memory_order_relaxed),
          .protocol_errors = protocol_errors_.load(std::memory_order_relaxed),
          .error_replies = error_replies_.load(std::memory_order_relaxed)};
}

void Server::io_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;  // running_ re-checked by the loop condition
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this wake-up
      const ConnPtr conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        close_connection(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) write_ready(conn);
      if (events[i].events & EPOLLIN) read_ready(conn);
    }
    // Close EOF'd connections whose drain completed since the last wake
    // (queued by flush_writes from a worker, signalled via wake_fd_).
    std::vector<ConnPtr> to_close;
    {
      std::lock_guard<std::mutex> lock(close_mu_);
      to_close.swap(close_queue_);
    }
    for (const ConnPtr& conn : to_close) close_connection(conn);
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Persistent failure (EMFILE/ENFILE/ENOBUFS): the pending
      // connection keeps the listen fd readable, so returning immediately
      // would make the level-triggered epoll loop spin at 100% CPU. Back
      // off briefly and let an fd free up.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return;
    }
    if (conns_.size() >= cfg_.max_connections) {
      ::close(fd);  // at capacity: refuse
      continue;
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Connection>(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn destructor closes fd
    }
    conns_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::read_ready(const ConnPtr& conn) {
  // Drain the socket (level-triggered epoll would re-notify, but fewer
  // wake-ups means fewer epoll_wait syscalls under load).
  char buf[16 * 1024];
  bool eof = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.insert(conn->in.end(), buf, buf + n);
      if (conn->in.size() > kHeaderBytes + kMaxPayload + sizeof(buf)) {
        break;  // stop reading; frame the backlog first
      }
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // hard socket error
    break;
  }

  // Slice complete frames off the stream front.
  std::size_t off = 0;
  bool poisoned = false;
  bool got_frame = false;
  while (true) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus st = decode_frame(
        std::span<const std::uint8_t>(conn->in).subspan(off), frame, consumed);
    if (st == DecodeStatus::kNeedMore) break;
    if (st != DecodeStatus::kOk) {
      poisoned = true;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->inbox.emplace_back(conn->in.begin() + off,
                               conn->in.begin() + off + consumed);
    }
    got_frame = true;
    off += consumed;
  }
  if (off > 0) conn->in.erase(conn->in.begin(), conn->in.begin() + off);

  if (poisoned) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    close_connection(conn);
    return;
  }
  if (got_frame) {
    if (workers_.empty()) {
      serve_connection(conn);  // inline mode
    } else {
      enqueue_ready(conn);
    }
  }
  if (eof) {
    // A client that pipelines requests and then half-closes (FIN) is
    // still owed its replies. Close immediately only if nothing is
    // pending; otherwise mark eof and silence EPOLLIN — a half-closed
    // socket stays permanently readable, so leaving it armed would spin
    // the level-triggered loop at 100% CPU while a worker drains. The
    // drain's final flush_writes requeues the close through wake_fd_.
    bool drained;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      drained = conn->drained();
      if (!drained) {
        conn->eof = true;
        epoll_event ev{};
        ev.events = conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      }
    }
    if (drained) close_connection(conn);
  }
}

void Server::enqueue_ready(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->scheduled || conn->inbox.empty() || conn->dead) return;
    conn->scheduled = true;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(conn);
  }
  queue_cv_.notify_one();
}

void Server::write_ready(const ConnPtr& conn) { flush_writes(conn); }

void Server::close_connection(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conns_.erase(conn->fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  // The socket itself closes when the last reference (possibly a worker
  // mid-drain) drops — never before, so the fd number cannot be reused
  // while a worker might still write to it.
}

void Server::worker_loop() {
  while (true) {
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty(); });
      conn = std::move(queue_.front());
      queue_.pop_front();
    }
    if (!conn) return;  // stop token
    serve_connection(conn);
  }
}

void Server::serve_connection(const ConnPtr& conn) {
  std::vector<std::uint8_t> reply;
  while (true) {
    std::vector<std::uint8_t> frame_bytes;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inbox.empty() || conn->dead) {
        conn->scheduled = false;
        break;
      }
      frame_bytes = std::move(conn->inbox.front());
      conn->inbox.pop_front();
    }
    reply.clear();
    serve_frame(frame_bytes, reply);
    frames_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out.insert(conn->out.end(), reply.begin(), reply.end());
    }
  }
  flush_writes(conn);
}

void Server::serve_frame(std::span<const std::uint8_t> frame_bytes,
                         std::vector<std::uint8_t>& out) {
  Frame frame;
  std::size_t consumed = 0;
  const DecodeStatus st = decode_frame(frame_bytes, frame, consumed);
  assert(st == DecodeStatus::kOk);  // read_ready only enqueues whole frames
  if (st != DecodeStatus::kOk) return;
  const std::uint32_t seq = frame.header.seq;

  switch (frame.header.type) {
    case MsgType::kPing:
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      encode_pong(out, seq);
      return;

    case MsgType::kAccessBatch: {
      // Thread-local staging keeps the hot path allocation-free after
      // warm-up; one wire batch becomes one apply_batch span.
      thread_local std::vector<WireAccess> wire;
      thread_local std::vector<runtime::Access> batch;
      thread_local std::vector<cache::AccessResult> results;
      if (decode_access_batch(frame, wire) != DecodeStatus::kOk) break;
      batch.clear();
      batch.reserve(wire.size());
      for (const WireAccess& a : wire) {
        batch.push_back({.page = a.page,
                         .timestamp = a.timestamp,
                         .is_write = a.is_write});
      }
      results.resize(batch.size());
      rt_.apply_batch(batch, results);
      AccessReply reply;
      reply.count = static_cast<std::uint32_t>(batch.size());
      for (const cache::AccessResult& r : results) {
        reply.hits += r.hit ? 1 : 0;
        reply.admitted += r.admitted ? 1 : 0;
        reply.evictions += r.evicted ? 1 : 0;
        reply.dirty_evictions += r.evicted_dirty ? 1 : 0;
      }
      requests_.fetch_add(batch.size(), std::memory_order_relaxed);
      encode_access_reply(out, seq, reply);
      return;
    }

    case MsgType::kStats: {
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      const runtime::RuntimeSnapshot snap = rt_.snapshot();
      StatsReply reply;
      reply.accesses = snap.merged.accesses;
      reply.hits = snap.merged.hits;
      reply.read_misses = snap.merged.read_misses;
      reply.write_misses = snap.merged.write_misses;
      reply.fills = snap.merged.fills;
      reply.bypasses = snap.merged.bypasses;
      reply.evictions = snap.merged.evictions;
      reply.dirty_evictions = snap.merged.dirty_evictions;
      reply.inferences = snap.inferences;
      reply.score_batches = snap.score_batches;
      reply.model_version = snap.model_version;
      reply.models_published = snap.models_published;
      reply.records_written = snap.records_written;
      reply.records_dropped = snap.records_dropped;
      reply.record_chunks = snap.record_chunks;
      encode_stats_reply(out, seq, reply);
      return;
    }

    case MsgType::kModelInfo: {
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      ModelInfoReply reply;
      reply.shards = rt_.config().shards;
      reply.policy_name = rt_.policy_name();
      if (const runtime::ModelSlot* slot = rt_.model_slot()) {
        reply.components = static_cast<std::uint32_t>(slot->load()->size());
        reply.model_version = slot->version();
      }
      encode_model_info_reply(out, seq, reply);
      return;
    }

    case MsgType::kFlush:
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      rt_.clear_stats();
      encode_flush_reply(out, seq);
      return;

    default:
      error_replies_.fetch_add(1, std::memory_order_relaxed);
      encode_error(out, seq,
                   {.code = ErrorCode::kUnknownType,
                    .message = std::string("not a request: ") +
                               to_string(frame.header.type)});
      return;
  }
  // A known request type whose payload failed validation.
  error_replies_.fetch_add(1, std::memory_order_relaxed);
  encode_error(out, seq,
               {.code = ErrorCode::kBadRequest,
                .message = std::string("malformed ") +
                           to_string(frame.header.type) + " payload"});
}

void Server::flush_writes(const ConnPtr& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->dead) return;
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        epoll_event ev{};
        // Never re-arm EPOLLIN on a half-closed socket (permanently
        // readable — it would spin the level-triggered loop).
        ev.events = (conn->eof ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                    EPOLLOUT;
        ev.data.fd = conn->fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
          conn->want_write = true;
        }
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer went away; epoll reports ERR/HUP and the I/O thread closes
  }
  conn->out.clear();
  conn->out_off = 0;
  if (conn->eof) {
    // The peer already FIN'd and its last reply byte is out: hand the
    // connection to the I/O thread for closing (never re-arm EPOLLIN on
    // a half-closed socket — that is the busy-spin this path avoids).
    if (conn->inbox.empty() && !conn->scheduled) request_close_locked(conn);
    return;
  }
  if (conn->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->want_write = false;
    }
  }
}

void Server::request_close_locked(const ConnPtr& conn) {
  if (conn->dead) return;
  {
    std::lock_guard<std::mutex> lock(close_mu_);
    close_queue_.push_back(conn);
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace icgmm::net
