#include "net/server.hpp"

#include <fcntl.h>
#include <limits.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <thread>
#include <utility>

namespace icgmm::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Framed replies coalesced per writev syscall. IOV_MAX (1024 on Linux)
/// is the kernel's hard cap; 64 keeps the iovec array a small stack
/// object and already covers every pipeline depth the drivers use — the
/// flush loop just issues another writev for deeper backlogs.
constexpr std::size_t kIovBatch = IOV_MAX < 64 ? IOV_MAX : 64;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// Per-connection state. The I/O thread owns `in` (the partial byte
/// stream) exclusively; everything under `mu` is shared between the I/O
/// thread and whichever worker currently has the connection scheduled.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  const int fd;

  /// Partial inbound byte stream; I/O thread only.
  std::vector<std::uint8_t> in;

  std::mutex mu;
  // --- guarded by mu ---
  std::deque<std::vector<std::uint8_t>> inbox;  ///< v1 frames, arrival order
  std::vector<std::uint8_t> out;                ///< v1 pending reply bytes
  std::size_t out_off = 0;
  /// v2 framed replies in completion order, drained by vectored writev.
  std::deque<std::vector<std::uint8_t>> outbox;
  std::size_t outbox_off = 0;  ///< bytes of outbox.front() already sent
  /// v2 requests dispatched to the pool and not yet completed. The worker
  /// that takes this to zero flushes the outbox — so concurrent
  /// completions coalesce into one writev instead of racing the socket.
  std::uint32_t v2_pending = 0;
  bool scheduled = false;   ///< v1 inbox queued or being drained by a worker
  bool want_write = false;  ///< EPOLLOUT armed
  bool eof = false;         ///< peer FIN seen; close once drained
  bool dead = false;        ///< deregistered; drop work, never write

  bool drained() const {  // call with mu held
    return inbox.empty() && !scheduled && v2_pending == 0 && outbox.empty() &&
           out_off >= out.size();
  }
};

Server::Server(runtime::Runtime& rt, ServerConfig cfg)
    : rt_(rt), cfg_(cfg) {
  if (cfg_.metrics != nullptr) {
    if (cfg_.trace_sample != 0) {
      stage_decode_ =
          &cfg_.metrics->histogram("icgmm_server_stage_decode_ns");
      stage_queue_ = &cfg_.metrics->histogram("icgmm_server_stage_queue_ns");
      stage_apply_ = &cfg_.metrics->histogram("icgmm_server_stage_apply_ns");
      stage_flush_ = &cfg_.metrics->histogram("icgmm_server_stage_flush_ns");
    }
    provider_id_ = cfg_.metrics->add_provider(
        [this](std::vector<obs::MetricsRegistry::Sample>& out) {
          const ServerStats s = stats();
          out.push_back(
              {"icgmm_server_connections_accepted", s.connections_accepted});
          out.push_back(
              {"icgmm_server_connections_closed", s.connections_closed});
          out.push_back({"icgmm_server_frames_served", s.frames_served});
          out.push_back({"icgmm_server_requests_served", s.requests_served});
          out.push_back({"icgmm_server_protocol_errors", s.protocol_errors});
          out.push_back({"icgmm_server_error_replies", s.error_replies});
          out.push_back({"icgmm_server_writev_calls", s.writev_calls});
          out.push_back({"icgmm_server_writev_replies", s.writev_replies});
        });
  }
}

Server::~Server() {
  // Drop the provider before any member goes away: a concurrent scrape
  // holds the registry mutex while calling it, so after remove_provider
  // returns no scrape can touch this object again.
  if (provider_id_ != 0) cfg_.metrics->remove_provider(provider_id_);
  stop();
}

bool Server::should_trace() noexcept {
  const std::uint32_t n = cfg_.trace_sample;
  if (n <= 1) return n == 1;
  return trace_tick_.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

void Server::start() {
  if (started_) throw std::logic_error("Server::start: already started");
  try {
    start_impl();
  } catch (...) {
    // Partial setup (e.g. bind EADDRINUSE after socket()) must not leak
    // fds — a caller retrying ports would otherwise creep toward EMFILE.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    throw;
  }
}

void Server::start_impl() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(cfg_.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, cfg_.listen_backlog) < 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  workers_.reserve(cfg_.workers);
  for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      queue_.push_back(Work{});  // stop tokens (null conn)
    }
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(close_mu_);
    close_queue_.clear();  // entries are still in conns_, closed below
  }
  closed_.fetch_add(conns_.size(), std::memory_order_relaxed);
  conns_.clear();  // destructors close the sockets
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  started_ = false;
}

ServerStats Server::stats() const noexcept {
  return {.connections_accepted = accepted_.load(std::memory_order_relaxed),
          .connections_closed = closed_.load(std::memory_order_relaxed),
          .frames_served = frames_.load(std::memory_order_relaxed),
          .requests_served = requests_.load(std::memory_order_relaxed),
          .protocol_errors = protocol_errors_.load(std::memory_order_relaxed),
          .error_replies = error_replies_.load(std::memory_order_relaxed),
          .writev_calls = writev_calls_.load(std::memory_order_relaxed),
          .writev_replies = writev_replies_.load(std::memory_order_relaxed)};
}

void Server::io_loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;  // running_ re-checked by the loop condition
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier this wake-up
      const ConnPtr conn = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        close_connection(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) write_ready(conn);
      if (events[i].events & EPOLLIN) read_ready(conn);
    }
    // Close EOF'd connections whose drain completed since the last wake
    // (queued by flush_writes from a worker, signalled via wake_fd_).
    std::vector<ConnPtr> to_close;
    {
      std::lock_guard<std::mutex> lock(close_mu_);
      to_close.swap(close_queue_);
    }
    for (const ConnPtr& conn : to_close) close_connection(conn);
  }
}

void Server::accept_ready() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Persistent failure (EMFILE/ENFILE/ENOBUFS): the pending
      // connection keeps the listen fd readable, so returning immediately
      // would make the level-triggered epoll loop spin at 100% CPU. Back
      // off briefly and let an fd free up.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return;
    }
    if (conns_.size() >= cfg_.max_connections) {
      ::close(fd);  // at capacity: refuse
      continue;
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Connection>(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn destructor closes fd
    }
    conns_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.events != nullptr) {
      cfg_.events->emit(obs::EventType::kConnOpen,
                        static_cast<std::uint64_t>(fd));
    }
  }
}

void Server::read_ready(const ConnPtr& conn) {
  // Drain the socket (level-triggered epoll would re-notify, but fewer
  // wake-ups means fewer epoll_wait syscalls under load).
  char buf[16 * 1024];
  bool eof = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.insert(conn->in.end(), buf, buf + n);
      if (conn->in.size() > kHeaderBytesV2 + kMaxPayload + sizeof(buf)) {
        break;  // stop reading; frame the backlog first
      }
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // hard socket error
    break;
  }

  // Slice complete frames off the stream front, dispatching each by the
  // version it arrived with: v1 into the order-preserving inbox, v2 as
  // an individual work item any worker may complete.
  const bool trace_decode = stage_decode_ != nullptr && should_trace();
  const std::uint64_t decode_start = trace_decode ? now_ns() : 0;
  std::size_t off = 0;
  bool poisoned = false;
  bool got_v1 = false;
  bool got_v2_inline = false;
  std::size_t v2_dispatched = 0;
  while (true) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus st = decode_frame(
        std::span<const std::uint8_t>(conn->in).subspan(off), frame, consumed);
    if (st == DecodeStatus::kNeedMore) break;
    if (st != DecodeStatus::kOk) {
      poisoned = true;
      break;
    }
    const auto frame_bytes =
        std::span<const std::uint8_t>(conn->in).subspan(off, consumed);
    if (frame.header.version == kProtocolV2 && !workers_.empty()) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        ++conn->v2_pending;
      }
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_.push_back(Work{
            conn,
            std::vector<std::uint8_t>(frame_bytes.begin(), frame_bytes.end()),
            stage_queue_ != nullptr && should_trace() ? now_ns() : 0});
      }
      ++v2_dispatched;
    } else if (frame.header.version == kProtocolV2) {
      // Inline mode: complete in arrival order on the I/O thread; the
      // replies still coalesce into one writev after the slice loop.
      std::vector<std::uint8_t> reply;
      serve_frame(frame_bytes, reply);
      frames_.fetch_add(1, std::memory_order_relaxed);
      if (!reply.empty()) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->outbox.push_back(std::move(reply));
      }
      got_v2_inline = true;
    } else {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->inbox.emplace_back(frame_bytes.begin(), frame_bytes.end());
      got_v1 = true;
    }
    off += consumed;
  }
  if (off > 0) conn->in.erase(conn->in.begin(), conn->in.begin() + off);

  // One decode sample covers the whole slice loop of this read batch —
  // framing cost per socket drain, not per frame.
  if (trace_decode && (got_v1 || got_v2_inline || v2_dispatched > 0)) {
    stage_decode_->record(now_ns() - decode_start);
  }
  if (v2_dispatched == 1) {
    queue_cv_.notify_one();
  } else if (v2_dispatched > 1) {
    queue_cv_.notify_all();
  }
  if (poisoned) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.events != nullptr) {
      cfg_.events->emit(obs::EventType::kProtocolError,
                        static_cast<std::uint64_t>(conn->fd));
    }
    close_connection(conn);
    return;
  }
  if (got_v1) {
    if (workers_.empty()) {
      serve_connection(conn);  // inline mode
    } else {
      enqueue_ready(conn);
    }
  }
  if (got_v2_inline) flush_writes(conn);
  if (eof) {
    // A client that pipelines requests and then half-closes (FIN) is
    // still owed its replies. Close immediately only if nothing is
    // pending; otherwise mark eof and silence EPOLLIN — a half-closed
    // socket stays permanently readable, so leaving it armed would spin
    // the level-triggered loop at 100% CPU while a worker drains. The
    // drain's final flush_writes requeues the close through wake_fd_.
    bool drained;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      drained = conn->drained();
      if (!drained) {
        conn->eof = true;
        epoll_event ev{};
        ev.events = conn->want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u;
        ev.data.fd = conn->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      }
    }
    if (drained) close_connection(conn);
  }
}

void Server::enqueue_ready(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->scheduled || conn->inbox.empty() || conn->dead) return;
    conn->scheduled = true;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(Work{
        conn, {}, stage_queue_ != nullptr && should_trace() ? now_ns() : 0});
  }
  queue_cv_.notify_one();
}

void Server::write_ready(const ConnPtr& conn) { flush_writes(conn); }

void Server::close_connection(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conns_.erase(conn->fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.events != nullptr) {
    cfg_.events->emit(obs::EventType::kConnClose,
                      static_cast<std::uint64_t>(conn->fd));
  }
  // The socket itself closes when the last reference (possibly a worker
  // mid-drain) drops — never before, so the fd number cannot be reused
  // while a worker might still write to it.
}

void Server::worker_loop() {
  while (true) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty(); });
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    if (!work.conn) return;  // stop token
    if (work.enqueue_ns != 0 && stage_queue_ != nullptr) {
      stage_queue_->record(now_ns() - work.enqueue_ns);
    }
    if (work.frame.empty()) {
      serve_connection(work.conn);  // v1: drain the inbox in order
    } else {
      serve_v2_frame(work.conn, work.frame);  // v2: one request, any order
    }
  }
}

void Server::serve_v2_frame(const ConnPtr& conn,
                            std::span<const std::uint8_t> frame_bytes) {
  bool dead;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    dead = conn->dead;
  }
  std::vector<std::uint8_t> reply;
  if (!dead) {
    serve_frame(frame_bytes, reply);
    frames_.fetch_add(1, std::memory_order_relaxed);
  }
  bool last_completer;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!reply.empty() && !conn->dead) {
      conn->outbox.push_back(std::move(reply));
    }
    --conn->v2_pending;
    // Only the completion that empties the in-flight set flushes: every
    // sibling reply finished in the meantime rides the same writev, and
    // two workers never contend on send() for one socket.
    last_completer = conn->v2_pending == 0;
  }
  if (last_completer) flush_writes(conn);
}

void Server::serve_connection(const ConnPtr& conn) {
  std::vector<std::uint8_t> reply;
  while (true) {
    std::vector<std::uint8_t> frame_bytes;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->inbox.empty() || conn->dead) {
        conn->scheduled = false;
        break;
      }
      frame_bytes = std::move(conn->inbox.front());
      conn->inbox.pop_front();
    }
    reply.clear();
    serve_frame(frame_bytes, reply);
    frames_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out.insert(conn->out.end(), reply.begin(), reply.end());
    }
  }
  flush_writes(conn);
}

void Server::serve_frame(std::span<const std::uint8_t> frame_bytes,
                         std::vector<std::uint8_t>& out) {
  Frame frame;
  std::size_t consumed = 0;
  const DecodeStatus st = decode_frame(frame_bytes, frame, consumed);
  assert(st == DecodeStatus::kOk);  // read_ready only enqueues whole frames
  if (st != DecodeStatus::kOk) return;
  // Replies go back in the version (and with the id) the request carried.
  const std::uint64_t seq = frame.header.seq;
  const std::uint8_t version = frame.header.version;

  switch (frame.header.type) {
    case MsgType::kPing:
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      encode_pong(out, seq, version);
      return;

    case MsgType::kAccessBatch: {
      // Thread-local staging keeps the hot path allocation-free after
      // warm-up; one wire batch becomes one apply_batch span, and the
      // aggregating overload folds the reply counters into the serve
      // loop — no per-request results array on the wire path.
      thread_local std::vector<WireAccess> wire;
      thread_local std::vector<runtime::Access> batch;
      if (decode_access_batch(frame, wire) != DecodeStatus::kOk) break;
      batch.clear();
      batch.reserve(wire.size());
      for (const WireAccess& a : wire) {
        batch.push_back({.page = a.page,
                         .timestamp = a.timestamp,
                         .is_write = a.is_write});
      }
      runtime::BatchOutcome outcome;
      const bool trace_apply = stage_apply_ != nullptr && should_trace();
      const std::uint64_t apply_start = trace_apply ? now_ns() : 0;
      rt_.apply_batch(batch, outcome);
      if (trace_apply) stage_apply_->record(now_ns() - apply_start);
      requests_.fetch_add(batch.size(), std::memory_order_relaxed);
      encode_access_reply(out, seq,
                          {.count = outcome.count,
                           .hits = outcome.hits,
                           .admitted = outcome.admitted,
                           .evictions = outcome.evictions,
                           .dirty_evictions = outcome.dirty_evictions},
                          version);
      return;
    }

    case MsgType::kStats: {
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      const runtime::RuntimeSnapshot snap = rt_.snapshot();
      StatsReply reply;
      reply.accesses = snap.merged.accesses;
      reply.hits = snap.merged.hits;
      reply.read_misses = snap.merged.read_misses;
      reply.write_misses = snap.merged.write_misses;
      reply.fills = snap.merged.fills;
      reply.bypasses = snap.merged.bypasses;
      reply.evictions = snap.merged.evictions;
      reply.dirty_evictions = snap.merged.dirty_evictions;
      reply.inferences = snap.inferences;
      reply.score_batches = snap.score_batches;
      reply.model_version = snap.model_version;
      reply.models_published = snap.models_published;
      reply.records_written = snap.records_written;
      reply.records_dropped = snap.records_dropped;
      reply.record_chunks = snap.record_chunks;
      reply.shadow_accesses = snap.shadow_accesses;
      reply.shadow_hits = snap.shadow_hits;
      reply.shadow_misses = snap.shadow_misses;
      reply.shadow_divergence = snap.shadow_divergence;
      reply.shadow_dropped = snap.shadow_dropped;
      encode_stats_reply(out, seq, reply, version);
      return;
    }

    case MsgType::kModelInfo: {
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      ModelInfoReply reply;
      reply.shards = rt_.config().shards;
      reply.policy_name = rt_.policy_name();
      if (const runtime::ModelSlot* slot = rt_.model_slot()) {
        reply.components = static_cast<std::uint32_t>(slot->load()->size());
        reply.model_version = slot->version();
      }
      encode_model_info_reply(out, seq, reply, version);
      return;
    }

    case MsgType::kFlush:
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      rt_.clear_stats();
      encode_flush_reply(out, seq, version);
      return;

    case MsgType::kMetrics: {
      if (decode_empty(frame) != DecodeStatus::kOk) break;
      MetricsReply reply;
      if (cfg_.metrics != nullptr) {
        for (obs::MetricsRegistry::Sample& s : cfg_.metrics->collect()) {
          reply.entries.push_back({std::move(s.name), s.value});
        }
        // The wire caps entries; a registry past it loses the tail
        // (collect() is name-sorted, so truncation is deterministic).
        if (reply.entries.size() > kMaxMetricsEntries) {
          reply.entries.resize(kMaxMetricsEntries);
        }
      }
      encode_metrics_reply(out, seq, reply, version);
      return;
    }

    default:
      error_replies_.fetch_add(1, std::memory_order_relaxed);
      encode_error(out, seq,
                   {.code = ErrorCode::kUnknownType,
                    .message = std::string("not a request: ") +
                               to_string(frame.header.type)},
                   version);
      return;
  }
  // A known request type whose payload failed validation.
  error_replies_.fetch_add(1, std::memory_order_relaxed);
  encode_error(out, seq,
               {.code = ErrorCode::kBadRequest,
                .message = std::string("malformed ") +
                           to_string(frame.header.type) + " payload"},
               version);
}

void Server::flush_writes(const ConnPtr& conn) {
  const bool trace = stage_flush_ != nullptr && should_trace();
  if (!trace) {
    flush_writes_impl(conn);
    return;
  }
  const std::uint64_t start = now_ns();
  flush_writes_impl(conn);
  stage_flush_->record(now_ns() - start);
}

void Server::flush_writes_impl(const ConnPtr& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->dead) return;
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        epoll_event ev{};
        // Never re-arm EPOLLIN on a half-closed socket (permanently
        // readable — it would spin the level-triggered loop).
        ev.events = (conn->eof ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                    EPOLLOUT;
        ev.data.fd = conn->fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
          conn->want_write = true;
        }
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer went away; epoll reports ERR/HUP and the I/O thread closes
  }
  conn->out.clear();
  conn->out_off = 0;
  // v2 outbox: one vectored writev per syscall, coalescing up to
  // kIovBatch framed replies (IOV_MAX-capped). The front entry may be
  // partially sent from an earlier backpressured flush (outbox_off).
  while (!conn->outbox.empty()) {
    iovec iov[kIovBatch];
    std::size_t cnt = 0;
    for (const std::vector<std::uint8_t>& reply : conn->outbox) {
      const std::size_t skip = cnt == 0 ? conn->outbox_off : 0;
      iov[cnt].iov_base = const_cast<std::uint8_t*>(reply.data()) + skip;
      iov[cnt].iov_len = reply.size() - skip;
      if (++cnt == kIovBatch) break;
    }
    const ssize_t n = ::writev(conn->fd, iov, static_cast<int>(cnt));
    if (n > 0) {
      writev_calls_.fetch_add(1, std::memory_order_relaxed);
      std::size_t advanced = static_cast<std::size_t>(n);
      while (advanced > 0) {
        const std::size_t left =
            conn->outbox.front().size() - conn->outbox_off;
        if (advanced < left) {
          conn->outbox_off += advanced;
          break;
        }
        advanced -= left;
        conn->outbox.pop_front();
        conn->outbox_off = 0;
        writev_replies_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        epoll_event ev{};
        ev.events = (conn->eof ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
                    EPOLLOUT;
        ev.data.fd = conn->fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
          conn->want_write = true;
        }
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer went away; epoll reports ERR/HUP and the I/O thread closes
  }
  if (conn->eof) {
    // The peer already FIN'd and its last reply byte is out: hand the
    // connection to the I/O thread for closing (never re-arm EPOLLIN on
    // a half-closed socket — that is the busy-spin this path avoids).
    if (conn->inbox.empty() && !conn->scheduled && conn->v2_pending == 0) {
      request_close_locked(conn);
    }
    return;
  }
  if (conn->want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->want_write = false;
    }
  }
}

void Server::request_close_locked(const ConnPtr& conn) {
  if (conn->dead) return;
  {
    std::lock_guard<std::mutex> lock(close_mu_);
    close_queue_.push_back(conn);
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace icgmm::net
