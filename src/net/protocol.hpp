// ICGMM binary wire protocol, versions 1 and 2 — the length-prefixed
// frame formats the RPC serving frontend speaks on a TCP stream.
//
// Every frame is a fixed-size header followed by `payload_len` bytes of
// payload, all integers explicitly little-endian on the wire regardless
// of host byte order. The header starts with a version-independent
// 8-byte prefix; the version byte selects the rest of the layout.
//
// Version 1 (16-byte header) — replies are correlated purely by arrival
// order per connection, so the server must complete a connection's
// requests in request order:
//
//   offset  size  field
//   0       4     magic       "ICGM" (0x4d474349 as a LE u32)
//   4       1     version     1
//   5       1     type        MsgType
//   6       2     flags       reserved, must be 0
//   8       4     seq         request sequence, echoed in the reply
//                             (pipelining correlates replies by seq)
//   12      4     payload_len bytes following the header
//
// Version 2 (24-byte header) — every request carries a u64 request id,
// the reply echoes it, and correlation moves from arrival order to id
// matching: replies on one connection may arrive in ANY order, which
// lets the server complete a connection's requests on any worker as
// they finish (and lets one connection multiplex independent logical
// streams):
//
//   offset  size  field
//   0       4     magic       "ICGM"
//   4       1     version     2
//   5       1     type        MsgType
//   6       2     flags       reserved, must be 0
//   8       8     request_id  echoed verbatim in the reply
//   16      4     payload_len bytes following the header
//   20      4     reserved    must be 0 (keeps the payload 8-aligned and
//                             leaves room for stream/priority bits)
//
// Both versions share all payload formats below; a server answers each
// frame in the version the frame arrived with. Unknown versions are
// stream poison (kBadVersion — the connection is dropped), which is the
// whole negotiation rule: a v2-capable client probes with a v2 PING and
// falls back to v1 if the connection dies instead of ponging.
//
// Request/reply payloads (LE throughout):
//   ACCESS_BATCH  u32 count, then count x {u64 page, u64 timestamp,
//                 u8 flags (bit0 = write)} — 17 bytes per access.
//   ACCESS_REPLY  u32 count, u32 hits, u32 admitted, u32 evictions,
//                 u32 dirty_evictions (per-batch aggregate).
//   STATS         empty request; reply carries the merged RuntimeSnapshot
//                 counters as 20 x u64 (see StatsReply).
//   MODEL_INFO    empty request; reply: u32 shards, u32 components,
//                 u64 model_version, u16 name_len, name bytes.
//   PING          empty request; PONG reply echoes the seq.
//   FLUSH         admin: zeroes the runtime's statistics counters
//                 (cache contents stay warm); empty reply.
//   METRICS       empty request; reply: u32 count, then count x
//                 {u16 name_len, name bytes, u64 value} — the server's
//                 whole metrics registry as length-prefixed name/value
//                 pairs (empty set when the server runs without a
//                 registry). Unlike the fixed 20-field STATS pin, the
//                 entry set is open-ended: clients match names, never
//                 positions.
//   ERROR         u16 code (ErrorCode), u16 msg_len, msg bytes — sent by
//                 the server for well-framed but unserviceable requests.
//
// Framing errors (bad magic/version, oversized or truncated declared
// lengths, payloads that do not parse) are not answerable on a byte
// stream — the decoder reports them and the server closes the
// connection. Limits: payload_len <= kMaxPayload, ACCESS_BATCH count in
// [1, kMaxBatch] and consistent with payload_len.
//
// Everything here is pure encode/decode over byte buffers — no sockets —
// so the whole protocol is unit-testable in isolation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace icgmm::net {

inline constexpr std::uint32_t kMagic = 0x4d474349u;  // "ICGM" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint8_t kProtocolV2 = 2;
inline constexpr std::size_t kHeaderBytes = 16;    ///< v1 header size
inline constexpr std::size_t kHeaderBytesV2 = 24;  ///< v2 header size

/// Header size for a protocol version (both are compile-time constants;
/// the stream decoder picks after reading the version byte).
constexpr std::size_t header_bytes(std::uint8_t version) noexcept {
  return version == kProtocolV2 ? kHeaderBytesV2 : kHeaderBytes;
}
/// Hard cap on a frame payload; a declared length above this is a
/// malformed frame (protects the server from hostile allocations).
inline constexpr std::uint32_t kMaxPayload = 1u << 20;  // 1 MiB
/// Largest ACCESS_BATCH count (kMaxPayload still binds first for big
/// batches: 17 bytes per access).
inline constexpr std::uint32_t kMaxBatch = 60000;
inline constexpr std::size_t kAccessWireBytes = 17;

enum class MsgType : std::uint8_t {
  kPing = 1,
  kPong = 2,
  kAccessBatch = 3,
  kAccessReply = 4,
  kStats = 5,
  kStatsReply = 6,
  kModelInfo = 7,
  kModelInfoReply = 8,
  kFlush = 9,
  kFlushReply = 10,
  kError = 11,
  kMetrics = 12,
  kMetricsReply = 13,
};

const char* to_string(MsgType t) noexcept;

enum class ErrorCode : std::uint16_t {
  kUnknownType = 1,    ///< well-framed request type the server cannot serve
  kBadRequest = 2,     ///< payload malformed for its declared type
};

/// Decoder outcome for header/frame parsing off a byte stream.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMore,     ///< not enough bytes yet — keep reading
  kBadMagic,
  kBadVersion,
  kBadLength,    ///< payload_len > kMaxPayload or inconsistent payload
  kBadPayload,   ///< payload bytes do not parse for the frame's type
};

const char* to_string(DecodeStatus s) noexcept;

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kPing;
  std::uint16_t flags = 0;
  /// v1: the u32 wire sequence; v2: the full u64 request id.
  std::uint64_t seq = 0;
  std::uint32_t payload_len = 0;
};

/// One request's worth of access, as carried on the wire.
struct WireAccess {
  PageIndex page = 0;
  Timestamp timestamp = 0;
  bool is_write = false;
};

struct AccessReply {
  std::uint32_t count = 0;
  std::uint32_t hits = 0;
  std::uint32_t admitted = 0;
  std::uint32_t evictions = 0;
  std::uint32_t dirty_evictions = 0;
};

/// Merged serving counters, the wire shape of RuntimeSnapshot.
struct StatsReply {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t fills = 0;
  std::uint64_t bypasses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
  std::uint64_t inferences = 0;
  std::uint64_t score_batches = 0;
  std::uint64_t model_version = 0;
  std::uint64_t models_published = 0;
  // Traffic recorder counters (all 0 when the server is not recording).
  std::uint64_t records_written = 0;
  std::uint64_t records_dropped = 0;
  std::uint64_t record_chunks = 0;
  // Shadow policy evaluation counters (all 0 when the server runs
  // without a shadow). Appended within the protocol version, same as the
  // recorder trio before them: the payload stays fixed-size, decoders
  // pin the new length.
  std::uint64_t shadow_accesses = 0;
  std::uint64_t shadow_hits = 0;
  std::uint64_t shadow_misses = 0;
  std::uint64_t shadow_divergence = 0;
  std::uint64_t shadow_dropped = 0;
};

struct ModelInfoReply {
  std::uint32_t shards = 0;
  std::uint32_t components = 0;   ///< mixture K (0 in prototype mode)
  std::uint64_t model_version = 0;
  std::string policy_name;
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

/// One registry sample on the wire.
struct MetricsEntry {
  std::string name;
  std::uint64_t value = 0;
};

struct MetricsReply {
  std::vector<MetricsEntry> entries;
};

/// Largest METRICS reply entry count (kMaxPayload still binds first for
/// long names; a sane registry is a few dozen entries).
inline constexpr std::uint32_t kMaxMetricsEntries = 4096;

// --- low-level little-endian primitives (exposed for tests) ---------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint16_t get_u16(const std::uint8_t* p) noexcept;
std::uint32_t get_u32(const std::uint8_t* p) noexcept;
std::uint64_t get_u64(const std::uint8_t* p) noexcept;

// --- frame encoding --------------------------------------------------------
// Encoders append one complete frame (header + payload) to `out`. The
// trailing `version` selects the header layout (default v1, byte-for-byte
// what this library has always emitted); under v1 only the low 32 bits of
// `seq` fit on the wire.

void encode_ping(std::vector<std::uint8_t>& out, std::uint64_t seq,
                 std::uint8_t version = kProtocolVersion);
void encode_pong(std::vector<std::uint8_t>& out, std::uint64_t seq,
                 std::uint8_t version = kProtocolVersion);
void encode_access_batch(std::vector<std::uint8_t>& out, std::uint64_t seq,
                         std::span<const WireAccess> accesses,
                         std::uint8_t version = kProtocolVersion);
void encode_access_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                         const AccessReply& reply,
                         std::uint8_t version = kProtocolVersion);
void encode_stats_request(std::vector<std::uint8_t>& out, std::uint64_t seq,
                          std::uint8_t version = kProtocolVersion);
void encode_stats_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                        const StatsReply& reply,
                        std::uint8_t version = kProtocolVersion);
void encode_model_info_request(std::vector<std::uint8_t>& out,
                               std::uint64_t seq,
                               std::uint8_t version = kProtocolVersion);
void encode_model_info_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                             const ModelInfoReply& reply,
                             std::uint8_t version = kProtocolVersion);
void encode_flush_request(std::vector<std::uint8_t>& out, std::uint64_t seq,
                          std::uint8_t version = kProtocolVersion);
void encode_flush_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                        std::uint8_t version = kProtocolVersion);
void encode_error(std::vector<std::uint8_t>& out, std::uint64_t seq,
                  const ErrorReply& reply,
                  std::uint8_t version = kProtocolVersion);
void encode_metrics_request(std::vector<std::uint8_t>& out, std::uint64_t seq,
                            std::uint8_t version = kProtocolVersion);
/// Throws std::length_error past kMaxMetricsEntries or a name over u16.
void encode_metrics_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                          const MetricsReply& reply,
                          std::uint8_t version = kProtocolVersion);

// --- frame decoding --------------------------------------------------------

/// Parses a header from the front of `buf`. kNeedMore when buf has fewer
/// bytes than the frame's version needs (16 for v1, 24 for v2; the
/// version byte itself sits in the common prefix); kBadMagic /
/// kBadVersion / kBadLength on a frame that can never become valid (the
/// connection should be dropped).
DecodeStatus decode_header(std::span<const std::uint8_t> buf,
                           FrameHeader& out) noexcept;

/// A fully-received frame: header plus its payload bytes (view into the
/// receive buffer — valid only while the buffer is stable).
struct Frame {
  FrameHeader header;
  std::span<const std::uint8_t> payload;
};

/// Extracts the next complete frame from the front of `buf`. On kOk,
/// `frame` views into `buf` and `consumed` is the total frame size to
/// drop from the stream. kNeedMore when the payload has not fully
/// arrived; other statuses poison the stream.
DecodeStatus decode_frame(std::span<const std::uint8_t> buf, Frame& frame,
                          std::size_t& consumed) noexcept;

// Payload decoders. Each validates the payload for its type; kBadPayload
// on any inconsistency (wrong size, count out of [1, kMaxBatch], count
// inconsistent with payload length, non-zero reserved flag bits).

DecodeStatus decode_access_batch(const Frame& frame,
                                 std::vector<WireAccess>& out);
DecodeStatus decode_access_reply(const Frame& frame, AccessReply& out) noexcept;
DecodeStatus decode_stats_reply(const Frame& frame, StatsReply& out) noexcept;
DecodeStatus decode_model_info_reply(const Frame& frame, ModelInfoReply& out);
DecodeStatus decode_error(const Frame& frame, ErrorReply& out);
DecodeStatus decode_metrics_reply(const Frame& frame, MetricsReply& out);
/// PING/PONG/STATS/MODEL_INFO/FLUSH/METRICS requests and the FLUSH reply
/// carry no payload; this enforces that.
DecodeStatus decode_empty(const Frame& frame) noexcept;

}  // namespace icgmm::net
