// Compatibility alias: the HDR-style log-bucketed histogram that used to
// live here was promoted into the observability layer
// (obs/histogram.hpp) so the server-side metrics registry and the load
// generator share one implementation. Existing includes and the
// net::LatencyRecorder name keep working unchanged.
#pragma once

#include "obs/histogram.hpp"

namespace icgmm::net {

using LatencyRecorder = obs::LatencyHistogram;

}  // namespace icgmm::net
