#include "net/protocol.hpp"

#include <stdexcept>
#include <string>

namespace icgmm::net {

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kPing: return "PING";
    case MsgType::kPong: return "PONG";
    case MsgType::kAccessBatch: return "ACCESS_BATCH";
    case MsgType::kAccessReply: return "ACCESS_REPLY";
    case MsgType::kStats: return "STATS";
    case MsgType::kStatsReply: return "STATS_REPLY";
    case MsgType::kModelInfo: return "MODEL_INFO";
    case MsgType::kModelInfoReply: return "MODEL_INFO_REPLY";
    case MsgType::kFlush: return "FLUSH";
    case MsgType::kFlushReply: return "FLUSH_REPLY";
    case MsgType::kError: return "ERROR";
    case MsgType::kMetrics: return "METRICS";
    case MsgType::kMetricsReply: return "METRICS_REPLY";
  }
  return "UNKNOWN";
}

const char* to_string(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

// --- little-endian primitives ---------------------------------------------
// Byte-at-a-time shifts: endian-correct on any host, and the compiler
// collapses them to plain loads/stores on little-endian targets.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

namespace {

void put_header(std::vector<std::uint8_t>& out, MsgType type, std::uint64_t seq,
                std::uint32_t payload_len, std::uint8_t version) {
  put_u32(out, kMagic);
  out.push_back(version);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // flags, reserved
  if (version == kProtocolV2) {
    put_u64(out, seq);
    put_u32(out, payload_len);
    put_u32(out, 0);  // reserved, must be 0
  } else {
    put_u32(out, static_cast<std::uint32_t>(seq));
    put_u32(out, payload_len);
  }
}

void put_empty_frame(std::vector<std::uint8_t>& out, MsgType type,
                     std::uint64_t seq, std::uint8_t version) {
  put_header(out, type, seq, 0, version);
}

}  // namespace

// --- encoders --------------------------------------------------------------

void encode_ping(std::vector<std::uint8_t>& out, std::uint64_t seq,
                 std::uint8_t version) {
  put_empty_frame(out, MsgType::kPing, seq, version);
}

void encode_pong(std::vector<std::uint8_t>& out, std::uint64_t seq,
                 std::uint8_t version) {
  put_empty_frame(out, MsgType::kPong, seq, version);
}

void encode_access_batch(std::vector<std::uint8_t>& out, std::uint64_t seq,
                         std::span<const WireAccess> accesses,
                         std::uint8_t version) {
  if (accesses.size() > kMaxBatch) {
    // Fail loudly at the sender: a frame over the protocol caps would be
    // silently treated as stream poison by the receiving server.
    throw std::length_error("encode_access_batch: " +
                            std::to_string(accesses.size()) + " accesses > " +
                            std::to_string(kMaxBatch));
  }
  const std::uint32_t count = static_cast<std::uint32_t>(accesses.size());
  const std::uint32_t payload =
      4 + count * static_cast<std::uint32_t>(kAccessWireBytes);
  put_header(out, MsgType::kAccessBatch, seq, payload, version);
  put_u32(out, count);
  for (const WireAccess& a : accesses) {
    put_u64(out, a.page);
    put_u64(out, a.timestamp);
    out.push_back(a.is_write ? 1 : 0);
  }
}

void encode_access_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                         const AccessReply& reply, std::uint8_t version) {
  put_header(out, MsgType::kAccessReply, seq, 20, version);
  put_u32(out, reply.count);
  put_u32(out, reply.hits);
  put_u32(out, reply.admitted);
  put_u32(out, reply.evictions);
  put_u32(out, reply.dirty_evictions);
}

void encode_stats_request(std::vector<std::uint8_t>& out, std::uint64_t seq,
                          std::uint8_t version) {
  put_empty_frame(out, MsgType::kStats, seq, version);
}

void encode_stats_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                        const StatsReply& reply, std::uint8_t version) {
  put_header(out, MsgType::kStatsReply, seq, 20 * 8, version);
  put_u64(out, reply.accesses);
  put_u64(out, reply.hits);
  put_u64(out, reply.read_misses);
  put_u64(out, reply.write_misses);
  put_u64(out, reply.fills);
  put_u64(out, reply.bypasses);
  put_u64(out, reply.evictions);
  put_u64(out, reply.dirty_evictions);
  put_u64(out, reply.inferences);
  put_u64(out, reply.score_batches);
  put_u64(out, reply.model_version);
  put_u64(out, reply.models_published);
  put_u64(out, reply.records_written);
  put_u64(out, reply.records_dropped);
  put_u64(out, reply.record_chunks);
  put_u64(out, reply.shadow_accesses);
  put_u64(out, reply.shadow_hits);
  put_u64(out, reply.shadow_misses);
  put_u64(out, reply.shadow_divergence);
  put_u64(out, reply.shadow_dropped);
}

void encode_model_info_request(std::vector<std::uint8_t>& out,
                               std::uint64_t seq, std::uint8_t version) {
  put_empty_frame(out, MsgType::kModelInfo, seq, version);
}

void encode_model_info_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                             const ModelInfoReply& reply,
                             std::uint8_t version) {
  const std::uint16_t name_len =
      static_cast<std::uint16_t>(reply.policy_name.size());
  put_header(out, MsgType::kModelInfoReply, seq, 4 + 4 + 8 + 2 + name_len,
             version);
  put_u32(out, reply.shards);
  put_u32(out, reply.components);
  put_u64(out, reply.model_version);
  put_u16(out, name_len);
  out.insert(out.end(), reply.policy_name.begin(), reply.policy_name.end());
}

void encode_flush_request(std::vector<std::uint8_t>& out, std::uint64_t seq,
                          std::uint8_t version) {
  put_empty_frame(out, MsgType::kFlush, seq, version);
}

void encode_flush_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                        std::uint8_t version) {
  put_empty_frame(out, MsgType::kFlushReply, seq, version);
}

void encode_error(std::vector<std::uint8_t>& out, std::uint64_t seq,
                  const ErrorReply& reply, std::uint8_t version) {
  const std::uint16_t msg_len =
      static_cast<std::uint16_t>(reply.message.size());
  put_header(out, MsgType::kError, seq, 2 + 2 + msg_len, version);
  put_u16(out, static_cast<std::uint16_t>(reply.code));
  put_u16(out, msg_len);
  out.insert(out.end(), reply.message.begin(), reply.message.end());
}

void encode_metrics_request(std::vector<std::uint8_t>& out, std::uint64_t seq,
                            std::uint8_t version) {
  put_empty_frame(out, MsgType::kMetrics, seq, version);
}

void encode_metrics_reply(std::vector<std::uint8_t>& out, std::uint64_t seq,
                          const MetricsReply& reply, std::uint8_t version) {
  if (reply.entries.size() > kMaxMetricsEntries) {
    throw std::length_error("encode_metrics_reply: " +
                            std::to_string(reply.entries.size()) +
                            " entries > " +
                            std::to_string(kMaxMetricsEntries));
  }
  std::size_t payload = 4;
  for (const MetricsEntry& e : reply.entries) {
    if (e.name.size() > 0xFFFF) {
      throw std::length_error("encode_metrics_reply: name over u16: " +
                              e.name.substr(0, 64));
    }
    payload += 2 + e.name.size() + 8;
  }
  if (payload > kMaxPayload) {
    throw std::length_error("encode_metrics_reply: payload " +
                            std::to_string(payload) + " > " +
                            std::to_string(kMaxPayload));
  }
  put_header(out, MsgType::kMetricsReply, seq,
             static_cast<std::uint32_t>(payload), version);
  put_u32(out, static_cast<std::uint32_t>(reply.entries.size()));
  for (const MetricsEntry& e : reply.entries) {
    put_u16(out, static_cast<std::uint16_t>(e.name.size()));
    out.insert(out.end(), e.name.begin(), e.name.end());
    put_u64(out, e.value);
  }
}

// --- decoders --------------------------------------------------------------

DecodeStatus decode_header(std::span<const std::uint8_t> buf,
                           FrameHeader& out) noexcept {
  if (buf.size() < kHeaderBytes) return DecodeStatus::kNeedMore;
  const std::uint8_t* p = buf.data();
  if (get_u32(p) != kMagic) return DecodeStatus::kBadMagic;
  out.version = p[4];
  if (out.version != kProtocolVersion && out.version != kProtocolV2) {
    return DecodeStatus::kBadVersion;
  }
  const std::uint8_t raw_type = p[5];
  if (raw_type < static_cast<std::uint8_t>(MsgType::kPing) ||
      raw_type > static_cast<std::uint8_t>(MsgType::kMetricsReply)) {
    // An unknown type means we cannot know the peer's framing intent was
    // sane; treat as stream poison rather than guessing.
    return DecodeStatus::kBadPayload;
  }
  out.type = static_cast<MsgType>(raw_type);
  out.flags = get_u16(p + 6);
  if (out.flags != 0) return DecodeStatus::kBadPayload;
  if (out.version == kProtocolV2) {
    // The common 16-byte prefix is in; the v2 tail (id high half,
    // payload_len, reserved) may still be in flight.
    if (buf.size() < kHeaderBytesV2) return DecodeStatus::kNeedMore;
    out.seq = get_u64(p + 8);
    out.payload_len = get_u32(p + 16);
    if (get_u32(p + 20) != 0) return DecodeStatus::kBadPayload;  // reserved
  } else {
    out.seq = get_u32(p + 8);
    out.payload_len = get_u32(p + 12);
  }
  if (out.payload_len > kMaxPayload) return DecodeStatus::kBadLength;
  return DecodeStatus::kOk;
}

DecodeStatus decode_frame(std::span<const std::uint8_t> buf, Frame& frame,
                          std::size_t& consumed) noexcept {
  const DecodeStatus hs = decode_header(buf, frame.header);
  if (hs != DecodeStatus::kOk) return hs;
  const std::size_t header = header_bytes(frame.header.version);
  const std::size_t total = header + frame.header.payload_len;
  if (buf.size() < total) return DecodeStatus::kNeedMore;
  frame.payload = buf.subspan(header, frame.header.payload_len);
  consumed = total;
  return DecodeStatus::kOk;
}

DecodeStatus decode_access_batch(const Frame& frame,
                                 std::vector<WireAccess>& out) {
  const std::span<const std::uint8_t> p = frame.payload;
  if (frame.header.type != MsgType::kAccessBatch || p.size() < 4) {
    return DecodeStatus::kBadPayload;
  }
  const std::uint32_t count = get_u32(p.data());
  if (count == 0 || count > kMaxBatch) return DecodeStatus::kBadPayload;
  if (p.size() != 4 + static_cast<std::size_t>(count) * kAccessWireBytes) {
    return DecodeStatus::kBadPayload;
  }
  out.clear();
  out.reserve(count);
  const std::uint8_t* rec = p.data() + 4;
  for (std::uint32_t i = 0; i < count; ++i, rec += kAccessWireBytes) {
    const std::uint8_t flags = rec[16];
    if (flags > 1) return DecodeStatus::kBadPayload;  // reserved bits
    out.push_back({.page = get_u64(rec),
                   .timestamp = get_u64(rec + 8),
                   .is_write = flags != 0});
  }
  return DecodeStatus::kOk;
}

DecodeStatus decode_access_reply(const Frame& frame,
                                 AccessReply& out) noexcept {
  const std::span<const std::uint8_t> p = frame.payload;
  if (frame.header.type != MsgType::kAccessReply || p.size() != 20) {
    return DecodeStatus::kBadPayload;
  }
  out.count = get_u32(p.data());
  out.hits = get_u32(p.data() + 4);
  out.admitted = get_u32(p.data() + 8);
  out.evictions = get_u32(p.data() + 12);
  out.dirty_evictions = get_u32(p.data() + 16);
  return DecodeStatus::kOk;
}

DecodeStatus decode_stats_reply(const Frame& frame, StatsReply& out) noexcept {
  const std::span<const std::uint8_t> p = frame.payload;
  if (frame.header.type != MsgType::kStatsReply || p.size() != 20 * 8) {
    return DecodeStatus::kBadPayload;
  }
  const std::uint8_t* d = p.data();
  out.accesses = get_u64(d);
  out.hits = get_u64(d + 8);
  out.read_misses = get_u64(d + 16);
  out.write_misses = get_u64(d + 24);
  out.fills = get_u64(d + 32);
  out.bypasses = get_u64(d + 40);
  out.evictions = get_u64(d + 48);
  out.dirty_evictions = get_u64(d + 56);
  out.inferences = get_u64(d + 64);
  out.score_batches = get_u64(d + 72);
  out.model_version = get_u64(d + 80);
  out.models_published = get_u64(d + 88);
  out.records_written = get_u64(d + 96);
  out.records_dropped = get_u64(d + 104);
  out.record_chunks = get_u64(d + 112);
  out.shadow_accesses = get_u64(d + 120);
  out.shadow_hits = get_u64(d + 128);
  out.shadow_misses = get_u64(d + 136);
  out.shadow_divergence = get_u64(d + 144);
  out.shadow_dropped = get_u64(d + 152);
  return DecodeStatus::kOk;
}

DecodeStatus decode_model_info_reply(const Frame& frame, ModelInfoReply& out) {
  const std::span<const std::uint8_t> p = frame.payload;
  if (frame.header.type != MsgType::kModelInfoReply || p.size() < 18) {
    return DecodeStatus::kBadPayload;
  }
  out.shards = get_u32(p.data());
  out.components = get_u32(p.data() + 4);
  out.model_version = get_u64(p.data() + 8);
  const std::uint16_t name_len = get_u16(p.data() + 16);
  if (p.size() != 18u + name_len) return DecodeStatus::kBadPayload;
  out.policy_name.assign(reinterpret_cast<const char*>(p.data() + 18),
                         name_len);
  return DecodeStatus::kOk;
}

DecodeStatus decode_error(const Frame& frame, ErrorReply& out) {
  const std::span<const std::uint8_t> p = frame.payload;
  if (frame.header.type != MsgType::kError || p.size() < 4) {
    return DecodeStatus::kBadPayload;
  }
  out.code = static_cast<ErrorCode>(get_u16(p.data()));
  const std::uint16_t msg_len = get_u16(p.data() + 2);
  if (p.size() != 4u + msg_len) return DecodeStatus::kBadPayload;
  out.message.assign(reinterpret_cast<const char*>(p.data() + 4), msg_len);
  return DecodeStatus::kOk;
}

DecodeStatus decode_metrics_reply(const Frame& frame, MetricsReply& out) {
  const std::span<const std::uint8_t> p = frame.payload;
  if (frame.header.type != MsgType::kMetricsReply || p.size() < 4) {
    return DecodeStatus::kBadPayload;
  }
  const std::uint32_t count = get_u32(p.data());
  if (count > kMaxMetricsEntries) return DecodeStatus::kBadPayload;
  out.entries.clear();
  out.entries.reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (p.size() - off < 2) return DecodeStatus::kBadPayload;
    const std::uint16_t name_len = get_u16(p.data() + off);
    off += 2;
    if (p.size() - off < static_cast<std::size_t>(name_len) + 8) {
      return DecodeStatus::kBadPayload;
    }
    MetricsEntry entry;
    entry.name.assign(reinterpret_cast<const char*>(p.data() + off), name_len);
    off += name_len;
    entry.value = get_u64(p.data() + off);
    off += 8;
    out.entries.push_back(std::move(entry));
  }
  if (off != p.size()) return DecodeStatus::kBadPayload;  // trailing bytes
  return DecodeStatus::kOk;
}

DecodeStatus decode_empty(const Frame& frame) noexcept {
  return frame.payload.empty() ? DecodeStatus::kOk : DecodeStatus::kBadPayload;
}

}  // namespace icgmm::net
