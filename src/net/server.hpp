// Epoll-based non-blocking TCP serving frontend over a runtime::Runtime.
//
//   clients --> accept --> per-connection read buffer --> frame decoder
//                               |                              |
//                               v                              v
//                        worker pool (N threads)  <--  per-connection inbox
//                               |
//                               v
//                  Runtime::apply_batch(span<Access>)   (one wire batch =
//                               |                        one span through
//                               v                        the miss path)
//                  per-connection write buffer --> epoll EPOLLOUT flush
//
// One I/O thread owns the epoll set: it accepts, reads, frames, and
// flushes backpressured writes. What happens to a complete frame depends
// on the protocol version it arrived with:
//
//  * v1 frames keep the order-preserving path byte for byte: they are
//    appended to the owning connection's inbox; a connection is
//    scheduled onto the worker queue only when its inbox goes non-empty
//    and it is not already scheduled, so v1 frames from one connection
//    are always processed in arrival order by exactly one worker at a
//    time (replies stay in request order — the v1 pipelining contract),
//    while different connections spread across the pool.
//
//  * v2 frames are dispatched individually: each becomes its own work
//    item, ANY worker may complete ANY request of a connection
//    concurrently, and each finished reply is pushed onto the
//    connection's outbox in completion order (replies correlate by the
//    echoed u64 request id, so order does not matter). The outbox is
//    drained with a single vectored `writev` per syscall — up to
//    IOV_MAX framed replies coalesced — by whichever thread completes
//    the connection's last in-flight request (or by the I/O thread on
//    EPOLLOUT backpressure), so a burst of pipelined requests costs one
//    write syscall, not one per reply. Consequence worth restating:
//    the server does NOT serialize a v2 connection's requests — two
//    pipelined ACCESS batches may interleave at the cache. Clients that
//    need a happens-before (e.g. a FLUSH barrier) must drain their own
//    outstanding ids first, which Client's sync RPCs do.
//
// `workers = 0` processes frames inline on the I/O thread (zero
// cross-thread handoff — the deterministic mode the loopback equivalence
// tests use; v2 frames then complete in arrival order by construction).
//
// Framing errors (bad magic/version, oversized declared length,
// unparseable payload) poison the byte stream: the server counts a
// protocol error and closes that connection. Well-framed but
// unserviceable requests get an ERROR reply and the connection lives on.
//
// Linux-only (epoll, eventfd, accept4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "obs/event_ring.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "runtime/runtime.hpp"

namespace icgmm::net {

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Accept from any interface (default: loopback only).
  bool bind_any = false;
  /// Worker threads decoding/serving frames; 0 = serve inline on the I/O
  /// thread.
  std::uint32_t workers = 1;
  std::uint32_t max_connections = 256;
  int listen_backlog = 64;
  /// Optional observability sinks (not owned; must outlive the server).
  /// With `metrics` set the server exports its ServerStats counters as a
  /// provider, records per-stage latency histograms
  /// (icgmm_server_stage_{decode,queue,apply,flush}_ns), and answers the
  /// METRICS verb with the full registry; without it the verb returns an
  /// empty set and tracing is off.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventRing* events = nullptr;
  /// Per-stage tracing sample rate: record 1 in N stage timings (1 =
  /// every one, 0 = tracing off). Counters are always exact; sampling
  /// only thins the histogram clock reads.
  std::uint32_t trace_sample = 1;
};

/// Monitoring counters (relaxed atomics; exact at quiescence).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t requests_served = 0;  ///< individual accesses
  std::uint64_t protocol_errors = 0;  ///< stream-poison closes
  std::uint64_t error_replies = 0;    ///< well-framed ERROR replies
  // Vectored reply batching (v2 connections only; both 0 on pure-v1
  // traffic). writev_replies / writev_calls = average replies coalesced
  // per flush syscall.
  std::uint64_t writev_calls = 0;    ///< outbox flush syscalls issued
  std::uint64_t writev_replies = 0;  ///< framed replies fully written by them
};

class Server {
 public:
  /// Serves `rt` (not owned; must outlive the server).
  Server(runtime::Runtime& rt, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O + worker threads. Throws
  /// std::system_error on socket/bind failure. Not restartable.
  void start();

  /// Graceful shutdown: stop accepting, drain workers, close connections.
  /// Idempotent; the destructor calls it.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Actual bound port (resolves ephemeral binds); valid after start().
  std::uint16_t port() const noexcept { return port_; }

  ServerStats stats() const noexcept;

 private:
  struct Connection;
  using ConnPtr = std::shared_ptr<Connection>;

  void start_impl();
  void io_loop();
  void worker_loop();
  void accept_ready();
  void read_ready(const ConnPtr& conn);
  void write_ready(const ConnPtr& conn);
  void close_connection(const ConnPtr& conn);
  /// Hands a drained, EOF'd connection to the I/O thread for closing
  /// (workers cannot touch conns_ / epoll teardown). Call with conn->mu
  /// held.
  void request_close_locked(const ConnPtr& conn);
  /// Drains conn's inbox (exclusively — the scheduled flag), serving each
  /// frame against the runtime and flushing replies. v1 path.
  void serve_connection(const ConnPtr& conn);
  /// Completes one v2 work item: serves the frame, pushes the reply onto
  /// the connection's outbox, and flushes when it was the last in-flight
  /// request (the "last completer flushes" rule — one writev covers every
  /// reply that piled up while siblings were still being served).
  void serve_v2_frame(const ConnPtr& conn,
                      std::span<const std::uint8_t> frame_bytes);
  /// Serves one complete frame, appending the reply to `out` (framed in
  /// the version the request arrived with).
  void serve_frame(std::span<const std::uint8_t> frame_bytes,
                   std::vector<std::uint8_t>& out);
  /// Sends as much buffered output as the socket accepts — the v1
  /// contiguous buffer first, then the v2 outbox via vectored writev —
  /// and arms EPOLLOUT for the remainder. Call with conn->mu NOT held.
  /// flush_writes is the traced wrapper; _impl does the work.
  void flush_writes(const ConnPtr& conn);
  void flush_writes_impl(const ConnPtr& conn);
  void enqueue_ready(const ConnPtr& conn);
  /// 1-in-N sampling gate shared by every traced stage; one relaxed
  /// fetch_add when N > 1, branch-only when N == 1.
  bool should_trace() noexcept;

  runtime::Runtime& rt_;
  ServerConfig cfg_;
  std::uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: kicks epoll_wait on stop()

  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Work queue. A v1 item carries an empty `frame`: "drain conn's inbox"
  // (at most one queued per connection — the scheduled flag). A v2 item
  // carries one owned frame: "complete this request on conn", and any
  // number may be in flight per connection at once. conn == nullptr is a
  // worker stop token.
  struct Work {
    ConnPtr conn;
    std::vector<std::uint8_t> frame;
    /// steady_clock nanos at enqueue when this item was sampled for
    /// queue-wait tracing; 0 = not sampled.
    std::uint64_t enqueue_ns = 0;
  };
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> queue_;

  // Live connections, keyed by fd. I/O thread only (no lock needed).
  std::unordered_map<int, ConnPtr> conns_;

  // EOF'd connections whose last replies have been flushed; the I/O
  // thread closes them on the next wake. Guarded by close_mu_; never
  // locked while holding a conn->mu in the pop path (push holds conn->mu
  // then close_mu_ — one direction only).
  std::mutex close_mu_;
  std::vector<ConnPtr> close_queue_;

  mutable std::atomic<std::uint64_t> accepted_{0};
  mutable std::atomic<std::uint64_t> closed_{0};
  mutable std::atomic<std::uint64_t> frames_{0};
  mutable std::atomic<std::uint64_t> requests_{0};
  mutable std::atomic<std::uint64_t> protocol_errors_{0};
  mutable std::atomic<std::uint64_t> error_replies_{0};
  mutable std::atomic<std::uint64_t> writev_calls_{0};
  mutable std::atomic<std::uint64_t> writev_replies_{0};

  // Per-stage latency histograms, resolved once from cfg_.metrics at
  // construction (null when metrics are off — every trace site checks).
  obs::ConcurrentHistogram* stage_decode_ = nullptr;
  obs::ConcurrentHistogram* stage_queue_ = nullptr;
  obs::ConcurrentHistogram* stage_apply_ = nullptr;
  obs::ConcurrentHistogram* stage_flush_ = nullptr;
  std::atomic<std::uint64_t> trace_tick_{0};
  std::uint64_t provider_id_ = 0;  ///< 0 = no provider registered
};

}  // namespace icgmm::net
