// Epoll-based non-blocking TCP serving frontend over a runtime::Runtime.
//
//   clients --> accept --> per-connection read buffer --> frame decoder
//                               |                              |
//                               v                              v
//                        worker pool (N threads)  <--  per-connection inbox
//                               |
//                               v
//                  Runtime::apply_batch(span<Access>)   (one wire batch =
//                               |                        one span through
//                               v                        the miss path)
//                  per-connection write buffer --> epoll EPOLLOUT flush
//
// One I/O thread owns the epoll set: it accepts, reads, frames, and
// flushes backpressured writes. Complete frames are appended to the
// owning connection's inbox; a connection is scheduled onto the worker
// queue only when its inbox goes non-empty and it is not already
// scheduled, so frames from one connection are always processed in
// arrival order by exactly one worker at a time (replies stay in request
// order — the pipelining contract), while different connections spread
// across the pool. `workers = 0` processes frames inline on the I/O
// thread (zero cross-thread handoff — the deterministic mode the
// loopback equivalence tests use).
//
// Framing errors (bad magic/version, oversized declared length,
// unparseable payload) poison the byte stream: the server counts a
// protocol error and closes that connection. Well-framed but
// unserviceable requests get an ERROR reply and the connection lives on.
//
// Linux-only (epoll, eventfd, accept4).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "runtime/runtime.hpp"

namespace icgmm::net {

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Accept from any interface (default: loopback only).
  bool bind_any = false;
  /// Worker threads decoding/serving frames; 0 = serve inline on the I/O
  /// thread.
  std::uint32_t workers = 1;
  std::uint32_t max_connections = 256;
  int listen_backlog = 64;
};

/// Monitoring counters (relaxed atomics; exact at quiescence).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_served = 0;
  std::uint64_t requests_served = 0;  ///< individual accesses
  std::uint64_t protocol_errors = 0;  ///< stream-poison closes
  std::uint64_t error_replies = 0;    ///< well-framed ERROR replies
};

class Server {
 public:
  /// Serves `rt` (not owned; must outlive the server).
  Server(runtime::Runtime& rt, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O + worker threads. Throws
  /// std::system_error on socket/bind failure. Not restartable.
  void start();

  /// Graceful shutdown: stop accepting, drain workers, close connections.
  /// Idempotent; the destructor calls it.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Actual bound port (resolves ephemeral binds); valid after start().
  std::uint16_t port() const noexcept { return port_; }

  ServerStats stats() const noexcept;

 private:
  struct Connection;
  using ConnPtr = std::shared_ptr<Connection>;

  void start_impl();
  void io_loop();
  void worker_loop();
  void accept_ready();
  void read_ready(const ConnPtr& conn);
  void write_ready(const ConnPtr& conn);
  void close_connection(const ConnPtr& conn);
  /// Hands a drained, EOF'd connection to the I/O thread for closing
  /// (workers cannot touch conns_ / epoll teardown). Call with conn->mu
  /// held.
  void request_close_locked(const ConnPtr& conn);
  /// Drains conn's inbox (exclusively — the scheduled flag), serving each
  /// frame against the runtime and flushing replies.
  void serve_connection(const ConnPtr& conn);
  /// Serves one complete frame, appending the reply to `out`.
  void serve_frame(std::span<const std::uint8_t> frame_bytes,
                   std::vector<std::uint8_t>& out);
  /// Sends as much buffered output as the socket accepts; arms EPOLLOUT
  /// for the remainder. Call with conn->mu NOT held.
  void flush_writes(const ConnPtr& conn);
  void enqueue_ready(const ConnPtr& conn);

  runtime::Runtime& rt_;
  ServerConfig cfg_;
  std::uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: kicks epoll_wait on stop()

  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Work queue: connections with non-empty inboxes. nullptr = stop token.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<ConnPtr> queue_;

  // Live connections, keyed by fd. I/O thread only (no lock needed).
  std::unordered_map<int, ConnPtr> conns_;

  // EOF'd connections whose last replies have been flushed; the I/O
  // thread closes them on the next wake. Guarded by close_mu_; never
  // locked while holding a conn->mu in the pop path (push holds conn->mu
  // then close_mu_ — one direction only).
  std::mutex close_mu_;
  std::vector<ConnPtr> close_queue_;

  mutable std::atomic<std::uint64_t> accepted_{0};
  mutable std::atomic<std::uint64_t> closed_{0};
  mutable std::atomic<std::uint64_t> frames_{0};
  mutable std::atomic<std::uint64_t> requests_{0};
  mutable std::atomic<std::uint64_t> protocol_errors_{0};
  mutable std::atomic<std::uint64_t> error_replies_{0};
};

}  // namespace icgmm::net
