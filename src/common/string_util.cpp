#include "common/string_util.hpp"

#include <charconv>
#include <stdexcept>

namespace icgmm {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto issp = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && issp(s.front())) s.remove_prefix(1);
  while (!s.empty() && issp(s.back())) s.remove_suffix(1);
  return s;
}

std::uint64_t parse_u64(std::string_view s) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("parse_u64: '" + std::string(s) + "'");
  }
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("parse_double: '" + std::string(s) + "'");
  }
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace icgmm
