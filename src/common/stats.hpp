// Streaming statistics helpers used by trace analysis and benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace icgmm {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
/// Numerically stable for the multi-million-sample traces we process.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample set (copies and partially sorts).
/// q in [0,1]; linear interpolation between order statistics.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation of two equally sized samples; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Simple fixed-capacity reservoir sample for subsampling huge traces
/// before EM training (Vitter's algorithm R).
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity) : capacity_(capacity) {}

  /// Offers x; `coin` must be a uniform draw in [0,1) and `idx_draw`
  /// a uniform draw in [0, seen) supplied by the caller's RNG so the
  /// reservoir itself stays deterministic and RNG-agnostic.
  void offer(double x, double coin, std::size_t idx_draw);

  std::span<const double> items() const noexcept { return items_; }
  std::size_t seen() const noexcept { return seen_; }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::vector<double> items_;
};

}  // namespace icgmm
