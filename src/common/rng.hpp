// Deterministic, seedable PRNG used by every stochastic component.
//
// All experiments must be bit-reproducible across runs, so we use our own
// xoshiro256** implementation (public-domain algorithm by Blackman & Vigna)
// rather than std::mt19937 whose distributions are not portable across
// standard libraries. Distribution helpers here are portable by construction.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace icgmm {

/// splitmix64: used to expand a 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, tiny state; satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1c6d4ull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection-free
  /// bound reduction; bias is negligible for n << 2^64.
  std::uint64_t below(std::uint64_t n) noexcept {
    // 128-bit multiply keeps the mapping uniform enough for simulation use.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>((*this)()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Standard normal via Box–Muller (portable, unlike std::normal_distribution).
  double gaussian() noexcept {
    // Draw u1 in (0,1] to avoid log(0).
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish exponential interarrival sample with the given mean.
  double exponential(double mean) noexcept {
    return -mean * std::log(1.0 - uniform());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace icgmm
