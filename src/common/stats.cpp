#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace icgmm {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> copy(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, copy.size() - 1);
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(lo),
                   copy.end());
  const double vlo = copy[lo];
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(hi),
                   copy.end());
  const double vhi = copy[hi];
  const double frac = pos - static_cast<double>(lo);
  return vlo + (vhi - vlo) * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  RunningStats sx, sy;
  for (double x : xs) sx.add(x);
  for (double y : ys) sy.add(y);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(xs.size());
  return cov / (sx.stddev() * sy.stddev());
}

void Reservoir::offer(double x, double coin, std::size_t idx_draw) {
  ++seen_;
  if (items_.size() < capacity_) {
    items_.push_back(x);
    return;
  }
  // Keep with probability capacity/seen, replacing a uniform victim.
  if (coin < static_cast<double>(capacity_) / static_cast<double>(seen_)) {
    items_[idx_draw % capacity_] = x;
  }
}

}  // namespace icgmm
