// Fundamental value types shared across the ICGMM library.
//
// The whole system traffics in three quantities: physical byte addresses
// as seen by the host, 4 KB page indices as seen by the SSD, and logical
// timestamps produced by the Algorithm-1 transform. Giving each its own
// alias keeps interfaces self-describing and prevents silent unit mixups.
#pragma once

#include <cstdint>

namespace icgmm {

/// Host physical byte address (CXL.mem request address).
using PhysAddr = std::uint64_t;

/// SSD page index: PhysAddr >> kPageShift. Note the paper's Sec. 3.1 writes
/// "PI = PA << 12", a typo for a right shift; see DESIGN.md.
using PageIndex = std::uint64_t;

/// Logical timestamp assigned by the Algorithm-1 window transform.
using Timestamp = std::uint64_t;

/// Nanoseconds; all latency accounting is done in ns to keep integers exact.
using Nanos = std::uint64_t;

/// SSD minimum access granularity is one 4 KB page.
inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageBytes = 1ull << kPageShift;

/// Host access granularity (one DRAM burst / cache line).
inline constexpr std::uint64_t kHostLineBytes = 64;

/// Converts a physical byte address to the 4 KB SSD page that holds it.
constexpr PageIndex page_of(PhysAddr pa) noexcept { return pa >> kPageShift; }

/// First byte address of a page.
constexpr PhysAddr addr_of(PageIndex pi) noexcept { return pi << kPageShift; }

/// Memory request direction.
enum class AccessType : std::uint8_t { kRead = 0, kWrite = 1 };

constexpr const char* to_string(AccessType t) noexcept {
  return t == AccessType::kRead ? "R" : "W";
}

}  // namespace icgmm
