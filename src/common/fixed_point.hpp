// Q-format fixed-point arithmetic mirroring the HLS datapath.
//
// The FPGA GMM kernel computes scores in fixed point; we provide the same
// representation so the quantized inference path (gmm/quantized.hpp) models
// the precision the hardware actually achieves, and tests can bound the
// float-vs-fixed score divergence.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace icgmm {

/// Signed fixed-point value with FRAC fractional bits stored in 64 bits.
/// Saturating arithmetic — HLS `ap_fixed` with AP_SAT semantics.
template <unsigned Frac>
class Fixed {
  static_assert(Frac > 0 && Frac < 63, "fraction width must fit in i64");

 public:
  static constexpr std::int64_t kOne = std::int64_t{1} << Frac;

  constexpr Fixed() = default;

  static constexpr Fixed from_raw(std::int64_t raw) noexcept {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  static constexpr Fixed from_double(double v) noexcept {
    // NaN carries no magnitude to saturate toward; map it to zero rather
    // than fall through the range checks into an undefined float->int
    // cast (HLS ap_fixed quantizes NaN to 0 as well).
    if (v != v) return from_raw(0);
    // Round to nearest; saturate to the representable range.
    const double scaled = v * static_cast<double>(kOne);
    if (scaled >= static_cast<double>(std::numeric_limits<std::int64_t>::max()))
      return from_raw(std::numeric_limits<std::int64_t>::max());
    if (scaled <= static_cast<double>(std::numeric_limits<std::int64_t>::min()))
      return from_raw(std::numeric_limits<std::int64_t>::min());
    return from_raw(static_cast<std::int64_t>(scaled >= 0 ? scaled + 0.5
                                                          : scaled - 0.5));
  }

  constexpr std::int64_t raw() const noexcept { return raw_; }
  constexpr double to_double() const noexcept {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  friend constexpr Fixed operator+(Fixed a, Fixed b) noexcept {
    return from_raw(sat_add(a.raw_, b.raw_));
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) noexcept {
    return from_raw(sat_sub(a.raw_, b.raw_));
  }
  friend constexpr Fixed operator*(Fixed a, Fixed b) noexcept {
    const __int128 wide = static_cast<__int128>(a.raw_) * b.raw_;
    const __int128 shifted = wide >> Frac;
    if (shifted > std::numeric_limits<std::int64_t>::max())
      return from_raw(std::numeric_limits<std::int64_t>::max());
    if (shifted < std::numeric_limits<std::int64_t>::min())
      return from_raw(std::numeric_limits<std::int64_t>::min());
    return from_raw(static_cast<std::int64_t>(shifted));
  }

  friend constexpr bool operator==(Fixed a, Fixed b) noexcept = default;
  friend constexpr auto operator<=>(Fixed a, Fixed b) noexcept {
    return a.raw_ <=> b.raw_;
  }

 private:
  static constexpr std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept {
    std::int64_t r = 0;
    if (__builtin_add_overflow(a, b, &r)) {
      return a > 0 ? std::numeric_limits<std::int64_t>::max()
                   : std::numeric_limits<std::int64_t>::min();
    }
    return r;
  }

  // Dedicated subtract: negating b first would overflow for
  // b == INT64_MIN, so saturate on the subtraction itself.
  static constexpr std::int64_t sat_sub(std::int64_t a, std::int64_t b) noexcept {
    std::int64_t r = 0;
    if (__builtin_sub_overflow(a, b, &r)) {
      return b < 0 ? std::numeric_limits<std::int64_t>::max()
                   : std::numeric_limits<std::int64_t>::min();
    }
    return r;
  }

  std::int64_t raw_ = 0;
};

/// Q32.16 — the format the HLS kernel uses for score accumulation.
using Q16 = Fixed<16>;
/// Q16.32 — wider fraction for intermediate exp() table values.
using Q32 = Fixed<32>;

}  // namespace icgmm
