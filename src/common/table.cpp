#include "common/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace icgmm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::fmt_percent(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string Table::fmt_micros(double micros, int precision) {
  return fmt(micros, precision) + " us";
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };

  std::string sep = "|";
  for (std::size_t w : widths) {
    sep += std::string(w + 2, '-');
    sep += '|';
  }
  sep += '\n';

  std::string out = render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace icgmm
