// Minimal ASCII table renderer for benchmark/report output.
//
// Every bench binary regenerates one of the paper's tables or figures; this
// class keeps their stdout format consistent and diff-friendly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace icgmm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_percent(double fraction, int precision = 2);
  static std::string fmt_micros(double micros, int precision = 2);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with aligned columns, `| a | b |` style.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace icgmm
