// Capture-environment provenance stamped into every bench/tool --json
// output, so checked-in BENCH_*.json baselines are attributable: a
// 1-core container capture and a 32-core dev-box capture must never be
// confused. The shared schema fragment is
//
//   "host": "<hostname>", "hardware_concurrency": N,
//   "build_flags": "<build type + compiler flags>",
//   "git_describe": "<git describe --always --dirty at configure time>"
//
// ICGMM_BUILD_FLAGS / ICGMM_GIT_DESCRIBE are injected per-target by the
// `icgmm_runenv` interface library (see the root CMakeLists); absent
// definitions degrade to "unknown" so the header works in any TU.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace icgmm {

inline std::string run_env_host() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
#endif
  return "unknown";
}

inline const char* run_env_build_flags() {
#ifdef ICGMM_BUILD_FLAGS
  return ICGMM_BUILD_FLAGS;
#else
  return "unknown";
#endif
}

inline const char* run_env_git_describe() {
#ifdef ICGMM_GIT_DESCRIBE
  return ICGMM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters) — build flags can legally contain
/// embedded quotes (`-DNAME=\"x\"`).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The shared `BENCH_*.json` header fields, without surrounding braces —
/// emit as the first fields of the JSON object, comma-terminated:
///   out << "{\n  " << run_env_json_fields() << ",\n  ...
inline std::string run_env_json_fields() {
  return "\"host\": \"" + json_escape(run_env_host()) +
         "\", \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) +
         ", \"build_flags\": \"" + json_escape(run_env_build_flags()) +
         "\", \"git_describe\": \"" + json_escape(run_env_git_describe()) +
         "\"";
}

}  // namespace icgmm
