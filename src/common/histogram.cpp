#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icgmm {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
  inv_width_ = static_cast<double>(bins) / (hi - lo);
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) * inv_width_);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(bin) + 0.5);
}

std::size_t Histogram::peak_bin() const noexcept {
  return static_cast<std::size_t>(std::distance(
      counts_.begin(), std::max_element(counts_.begin(), counts_.end())));
}

double Histogram::mass_in_top_bins(std::size_t k) const {
  if (total_ == 0 || k == 0) return 0.0;
  std::vector<std::uint64_t> sorted(counts_.begin(), counts_.end());
  k = std::min(k, sorted.size());
  std::partial_sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(k),
                    sorted.end(), std::greater<>());
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < k; ++i) top += sorted[i];
  return static_cast<double>(top) / static_cast<double>(total_);
}

double Histogram::entropy_bits() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  for (std::uint64_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total_);
    h -= p * std::log2(p);
  }
  return h;
}

std::string Histogram::ascii_sketch(std::size_t rows) const {
  if (counts_.empty() || rows == 0) return {};
  const std::uint64_t peak = *std::max_element(counts_.begin(), counts_.end());
  if (peak == 0) return std::string(counts_.size(), '.') + "\n";
  std::string out;
  out.reserve((counts_.size() + 1) * rows);
  for (std::size_t r = rows; r-- > 0;) {
    const double threshold =
        static_cast<double>(peak) * (static_cast<double>(r) + 0.5) /
        static_cast<double>(rows);
    for (std::uint64_t c : counts_) {
      out += static_cast<double>(c) > threshold ? '#' : ' ';
    }
    out += '\n';
  }
  return out;
}

Grid2D::Grid2D(double xlo, double xhi, std::size_t xbins, double ylo,
               double yhi, std::size_t ybins)
    : xlo_(xlo), xhi_(xhi), ylo_(ylo), yhi_(yhi), xbins_(xbins), ybins_(ybins),
      cells_(xbins * ybins, 0) {
  if (!(xhi > xlo) || !(yhi > ylo) || xbins == 0 || ybins == 0) {
    throw std::invalid_argument("Grid2D: degenerate extent");
  }
}

void Grid2D::add(double x, double y, std::uint64_t weight) noexcept {
  auto xb = static_cast<std::ptrdiff_t>((x - xlo_) / (xhi_ - xlo_) *
                                        static_cast<double>(xbins_));
  auto yb = static_cast<std::ptrdiff_t>((y - ylo_) / (yhi_ - ylo_) *
                                        static_cast<double>(ybins_));
  xb = std::clamp<std::ptrdiff_t>(xb, 0, static_cast<std::ptrdiff_t>(xbins_) - 1);
  yb = std::clamp<std::ptrdiff_t>(yb, 0, static_cast<std::ptrdiff_t>(ybins_) - 1);
  cells_[index(static_cast<std::size_t>(xb), static_cast<std::size_t>(yb))] +=
      weight;
  total_ += weight;
}

std::uint64_t Grid2D::at(std::size_t xb, std::size_t yb) const {
  if (xb >= xbins_ || yb >= ybins_) throw std::out_of_range("Grid2D::at");
  return cells_[index(xb, yb)];
}

double Grid2D::occupancy() const {
  const auto nonempty = static_cast<double>(
      std::count_if(cells_.begin(), cells_.end(),
                    [](std::uint64_t c) { return c != 0; }));
  return nonempty / static_cast<double>(cells_.size());
}

std::string Grid2D::ascii_sketch() const {
  static constexpr char kShades[] = " .:-=+*#%@";
  const std::uint64_t peak = *std::max_element(cells_.begin(), cells_.end());
  std::string out;
  out.reserve((xbins_ + 1) * ybins_);
  for (std::size_t yb = ybins_; yb-- > 0;) {
    for (std::size_t xb = 0; xb < xbins_; ++xb) {
      const std::uint64_t c = cells_[index(xb, yb)];
      std::size_t shade = 0;
      if (peak > 0 && c > 0) {
        shade = 1 + static_cast<std::size_t>(
                        static_cast<double>(c) / static_cast<double>(peak) * 8.0);
        shade = std::min<std::size_t>(shade, 9);
      }
      out += kShades[shade];
    }
    out += '\n';
  }
  return out;
}

}  // namespace icgmm
