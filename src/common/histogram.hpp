// Fixed-bin histogram used to extract the paper's Fig. 2 distributions
// (spatial: address -> access count; temporal: timestamp -> address).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace icgmm {

/// Equal-width histogram over [lo, hi) with a fixed bin count.
/// Out-of-range samples are clamped into the edge bins so totals are
/// preserved (trace tails matter for miss-rate accounting).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  /// Center x-value of a bin.
  double bin_center(std::size_t bin) const;
  /// Index of the fullest bin (first on tie).
  std::size_t peak_bin() const noexcept;
  /// Fraction of total mass in the top-k fullest bins; 0 if empty.
  double mass_in_top_bins(std::size_t k) const;
  /// Shannon entropy (bits) of the normalized histogram.
  double entropy_bits() const;

  /// Renders an ASCII sketch (for bench/fig2 output), `width` chars tall bars.
  std::string ascii_sketch(std::size_t rows = 8) const;

 private:
  double lo_;
  double hi_;
  double inv_width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Two-dimensional count grid (timestamp x address) backing the temporal
/// scatter plots in Fig. 2.
class Grid2D {
 public:
  Grid2D(double xlo, double xhi, std::size_t xbins, double ylo, double yhi,
         std::size_t ybins);

  void add(double x, double y, std::uint64_t weight = 1) noexcept;

  std::size_t xbins() const noexcept { return xbins_; }
  std::size_t ybins() const noexcept { return ybins_; }
  std::uint64_t at(std::size_t xb, std::size_t yb) const;
  std::uint64_t total() const noexcept { return total_; }

  /// Fraction of nonempty cells; low occupancy indicates clustered access.
  double occupancy() const;

  std::string ascii_sketch() const;

 private:
  std::size_t index(std::size_t xb, std::size_t yb) const noexcept {
    return yb * xbins_ + xb;
  }

  double xlo_, xhi_, ylo_, yhi_;
  std::size_t xbins_, ybins_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> cells_;
};

}  // namespace icgmm
