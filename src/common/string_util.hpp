// Small string helpers shared by trace IO and config parsing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace icgmm {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Parses a non-negative integer; throws std::invalid_argument on junk.
std::uint64_t parse_u64(std::string_view s);

/// Parses a double; throws std::invalid_argument on junk.
double parse_double(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace icgmm
