// Set-associative DRAM cache model (the paper's cache control engine state:
// tag array + per-block metadata; data movement is implied, only tags and
// scores live on-chip, §4.2).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/config.hpp"
#include "cache/policy.hpp"
#include "cache/stats.hpp"

namespace icgmm::cache {

/// Outcome of one request, consumed by the latency model.
struct AccessResult {
  bool hit = false;
  bool admitted = false;        ///< miss was filled into the cache
  bool evicted = false;         ///< a valid block was displaced
  bool evicted_dirty = false;   ///< displaced block needs SSD writeback
  bool is_write = false;
  PageIndex victim_page = 0;    ///< valid when evicted
};

/// Outcome of an invalidate() — the async miss pipeline's demotion
/// primitive (undoing a provisional admission the GMM later rejected).
struct InvalidateResult {
  bool found = false;      ///< the page was resident and is now dropped
  bool was_dirty = false;  ///< the dropped block still owes an SSD writeback
};

class SetAssociativeCache {
 public:
  /// Upper bound on associativity (sizes the on-stack tag buffer handed to
  /// the policy; real deployments use 8).
  static constexpr std::uint32_t kMaxWays = 64;
  /// Takes ownership of the policy. Throws on invalid geometry.
  SetAssociativeCache(CacheConfig cfg, std::unique_ptr<ReplacementPolicy> policy);

  const CacheConfig& config() const noexcept { return cfg_; }
  const CacheStats& stats() const noexcept { return stats_; }
  ReplacementPolicy& policy() noexcept { return *policy_; }
  const ReplacementPolicy& policy() const noexcept { return *policy_; }

  /// Processes one request; updates stats and policy state.
  AccessResult access(const AccessContext& ctx);

  /// True if `page` is currently resident (no state change).
  bool contains(PageIndex page) const noexcept;

  /// Copies set `set`'s valid tags (and their way indices) into
  /// pages/ways; both spans must hold at least `associativity` elements.
  /// Returns the number of valid blocks written — the tag snapshot the
  /// deferred decision thread rescopes a set from.
  std::uint32_t residents(std::uint64_t set, std::span<PageIndex> pages,
                          std::span<std::uint32_t> ways) const noexcept;

  /// Drops `page` if resident. Counted as an eviction (a dirty one as a
  /// dirty eviction: the data still owes its writeback) — this is how the
  /// async pipeline demotes a provisionally admitted page the GMM scored
  /// below the admission threshold. The policy is not notified; the freed
  /// way is simply preferred as an invalid way by the next fill.
  InvalidateResult invalidate(PageIndex page) noexcept;

  /// Number of valid blocks (for occupancy assertions in tests).
  std::uint64_t valid_blocks() const noexcept;

  /// Drops all blocks and statistics; policy metadata is re-attached.
  void reset();

  /// Zeroes the statistics counters but keeps all cached blocks and policy
  /// state — used to exclude the cold-start window from measurements, the
  /// same warm-up discipline the paper applies (§3.1).
  void clear_stats() noexcept { stats_ = CacheStats{}; }

  /// Set index of a page. Runs on every access, so when the set count is a
  /// power of two (every realistic geometry: capacity, block size and
  /// associativity are all powers of two) the constructor precomputes a
  /// mask and this is a single AND instead of a 64-bit modulo.
  std::uint64_t set_of(PageIndex page) const noexcept {
    return sets_pow2_ ? (page & set_mask_) : (page % sets_);
  }

 private:
  struct Block {
    PageIndex tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  Block& block(std::uint64_t set, std::uint32_t way) noexcept {
    return blocks_[set * cfg_.associativity + way];
  }
  const Block& block(std::uint64_t set, std::uint32_t way) const noexcept {
    return blocks_[set * cfg_.associativity + way];
  }

  CacheConfig cfg_;
  std::uint64_t sets_;
  bool sets_pow2_ = false;
  std::uint64_t set_mask_ = 0;  ///< sets_ - 1, valid when sets_pow2_
  std::vector<Block> blocks_;
  std::unique_ptr<ReplacementPolicy> policy_;
  CacheStats stats_;
};

}  // namespace icgmm::cache
