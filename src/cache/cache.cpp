#include "cache/cache.hpp"

#include <stdexcept>

namespace icgmm::cache {

SetAssociativeCache::SetAssociativeCache(
    CacheConfig cfg, std::unique_ptr<ReplacementPolicy> policy)
    : cfg_(cfg), policy_(std::move(policy)) {
  cfg_.validate();
  if (!policy_) throw std::invalid_argument("SetAssociativeCache: null policy");
  if (cfg_.associativity > kMaxWays) {
    throw std::invalid_argument("SetAssociativeCache: associativity > kMaxWays");
  }
  sets_ = cfg_.sets();
  sets_pow2_ = (sets_ & (sets_ - 1)) == 0;
  set_mask_ = sets_ - 1;
  blocks_.resize(cfg_.blocks());
  policy_->attach(sets_, cfg_.associativity);
}

AccessResult SetAssociativeCache::access(const AccessContext& ctx) {
  ++stats_.accesses;
  AccessResult result;
  result.is_write = ctx.is_write;

  const std::uint64_t set = set_of(ctx.page);

  // Tag comparison — the FPGA does all ways in parallel; order is moot.
  for (std::uint32_t way = 0; way < cfg_.associativity; ++way) {
    Block& b = block(set, way);
    if (b.valid && b.tag == ctx.page) {
      ++stats_.hits;
      if (ctx.is_write) b.dirty = true;
      policy_->on_hit(set, way, ctx);
      result.hit = true;
      return result;
    }
  }

  // Miss.
  if (ctx.is_write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }

  if (!policy_->should_admit(ctx)) {
    ++stats_.bypasses;
    return result;  // page served SSD<->host directly, cache untouched
  }

  // Prefer an invalid way; otherwise ask the policy for a victim.
  std::uint32_t fill_way = cfg_.associativity;
  for (std::uint32_t way = 0; way < cfg_.associativity; ++way) {
    if (!block(set, way).valid) {
      fill_way = way;
      break;
    }
  }
  if (fill_way == cfg_.associativity) {
    // Hand the policy the set's tags (FPGA: the tag/score table buffer).
    PageIndex resident[kMaxWays];
    const std::uint32_t ways = std::min(cfg_.associativity, kMaxWays);
    for (std::uint32_t way = 0; way < ways; ++way) {
      resident[way] = block(set, way).tag;
    }
    fill_way = policy_->choose_victim(set, {resident, ways}, ctx);
    if (fill_way >= cfg_.associativity) {
      throw std::logic_error("policy returned out-of-range victim way");
    }
    Block& victim = block(set, fill_way);
    result.evicted = true;
    result.evicted_dirty = victim.dirty;
    result.victim_page = victim.tag;
    ++stats_.evictions;
    if (victim.dirty) ++stats_.dirty_evictions;
  }

  Block& b = block(set, fill_way);
  b.tag = ctx.page;
  b.valid = true;
  b.dirty = ctx.is_write;  // write-allocate: a write miss fills dirty
  ++stats_.fills;
  policy_->on_fill(set, fill_way, ctx);
  result.admitted = true;
  return result;
}

std::uint32_t SetAssociativeCache::residents(
    std::uint64_t set, std::span<PageIndex> pages,
    std::span<std::uint32_t> ways) const noexcept {
  std::uint32_t count = 0;
  for (std::uint32_t way = 0; way < cfg_.associativity; ++way) {
    const Block& b = block(set, way);
    if (!b.valid) continue;
    pages[count] = b.tag;
    ways[count] = way;
    ++count;
  }
  return count;
}

InvalidateResult SetAssociativeCache::invalidate(PageIndex page) noexcept {
  const std::uint64_t set = set_of(page);
  for (std::uint32_t way = 0; way < cfg_.associativity; ++way) {
    Block& b = block(set, way);
    if (!b.valid || b.tag != page) continue;
    InvalidateResult result{.found = true, .was_dirty = b.dirty};
    b = Block{};
    ++stats_.evictions;
    if (result.was_dirty) ++stats_.dirty_evictions;
    return result;
  }
  return {};
}

bool SetAssociativeCache::contains(PageIndex page) const noexcept {
  const std::uint64_t set = set_of(page);
  for (std::uint32_t way = 0; way < cfg_.associativity; ++way) {
    const Block& b = block(set, way);
    if (b.valid && b.tag == page) return true;
  }
  return false;
}

std::uint64_t SetAssociativeCache::valid_blocks() const noexcept {
  std::uint64_t count = 0;
  for (const Block& b : blocks_) count += b.valid ? 1 : 0;
  return count;
}

void SetAssociativeCache::reset() {
  for (Block& b : blocks_) b = Block{};
  stats_ = CacheStats{};
  policy_->attach(sets_, cfg_.associativity);
}

}  // namespace icgmm::cache
