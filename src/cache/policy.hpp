// Replacement + admission policy interface.
//
// The cache owns hit/miss determination and block state; the policy owns
// two decisions the paper's policy engine makes: (1) should a missing page
// be admitted at all ("smart caching"), and (2) which valid way to evict
// ("smart eviction"). Classic policies admit everything and differ only in
// victim choice.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/types.hpp"

namespace icgmm::cache {

/// Everything a policy may look at for one request. `timestamp` is the
/// Algorithm-1 logical time — the same signal the FPGA feeds its GMM.
struct AccessContext {
  PageIndex page = 0;
  Timestamp timestamp = 0;
  bool is_write = false;
};

class ReplacementPolicy {
 public:
  ReplacementPolicy(const ReplacementPolicy&) = delete;
  ReplacementPolicy& operator=(const ReplacementPolicy&) = delete;
  virtual ~ReplacementPolicy() = default;

  const std::string& name() const noexcept { return name_; }

  /// Fresh policy of the same kind and configuration with *no* runtime
  /// state (as if newly constructed; the owning cache re-attaches it).
  /// This is how the sharded serving runtime replicates one configured
  /// policy across N independent shards.
  virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

  /// Called once by the cache so the policy can size its metadata.
  virtual void attach(std::uint64_t sets, std::uint32_t ways) = 0;

  /// Admission decision for a missing page; default: always admit.
  virtual bool should_admit(const AccessContext& /*ctx*/) { return true; }

  /// Victim way among [0, ways) — all ways are valid when called.
  /// `resident` holds the page currently cached in each way (the tags the
  /// control engine loaded into the on-board buffer, §4.2), enabling
  /// policies that rescore resident blocks at the current timestamp.
  virtual std::uint32_t choose_victim(std::uint64_t set,
                                      std::span<const PageIndex> resident,
                                      const AccessContext& ctx) = 0;

  /// Notification of a hit on (set, way).
  virtual void on_hit(std::uint64_t set, std::uint32_t way,
                      const AccessContext& ctx) = 0;

  /// Notification that (set, way) was filled with ctx.page.
  virtual void on_fill(std::uint64_t set, std::uint32_t way,
                       const AccessContext& ctx) = 0;

 protected:
  explicit ReplacementPolicy(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
};

}  // namespace icgmm::cache
