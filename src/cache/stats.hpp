// Counters the cache maintains; everything the Fig. 6 / Table 1 harnesses
// report derives from these.
#pragma once

#include <cstdint>

namespace icgmm::cache {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t fills = 0;            ///< misses admitted into the cache
  std::uint64_t bypasses = 0;         ///< misses the policy declined to cache
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;  ///< evictions requiring SSD writeback

  constexpr std::uint64_t misses() const noexcept {
    return read_misses + write_misses;
  }
  constexpr double miss_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses()) /
                               static_cast<double>(accesses);
  }
  constexpr double hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
};

}  // namespace icgmm::cache
