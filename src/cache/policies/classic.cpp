#include "cache/policies/classic.hpp"

#include <algorithm>

namespace icgmm::cache {

// ---------- LRU ----------

std::unique_ptr<ReplacementPolicy> LruPolicy::clone() const {
  return std::make_unique<LruPolicy>();
}

void LruPolicy::attach(std::uint64_t sets, std::uint32_t ways) {
  ways_ = ways;
  tick_ = 0;
  last_use_.assign(sets * ways, 0);
}

void LruPolicy::touch(std::uint64_t set, std::uint32_t way) {
  last_use_[set * ways_ + way] = ++tick_;
}

std::uint32_t LruPolicy::choose_victim(std::uint64_t set, std::span<const PageIndex>, const AccessContext&) {
  const auto base = set * ways_;
  std::uint32_t victim = 0;
  for (std::uint32_t way = 1; way < ways_; ++way) {
    if (last_use_[base + way] < last_use_[base + victim]) victim = way;
  }
  return victim;
}

void LruPolicy::on_hit(std::uint64_t set, std::uint32_t way, const AccessContext&) {
  touch(set, way);
}

void LruPolicy::on_fill(std::uint64_t set, std::uint32_t way, const AccessContext&) {
  touch(set, way);
}

// ---------- FIFO ----------

std::unique_ptr<ReplacementPolicy> FifoPolicy::clone() const {
  return std::make_unique<FifoPolicy>();
}

void FifoPolicy::attach(std::uint64_t sets, std::uint32_t ways) {
  ways_ = ways;
  tick_ = 0;
  fill_tick_.assign(sets * ways, 0);
}

std::uint32_t FifoPolicy::choose_victim(std::uint64_t set, std::span<const PageIndex>, const AccessContext&) {
  const auto base = set * ways_;
  std::uint32_t victim = 0;
  for (std::uint32_t way = 1; way < ways_; ++way) {
    if (fill_tick_[base + way] < fill_tick_[base + victim]) victim = way;
  }
  return victim;
}

void FifoPolicy::on_hit(std::uint64_t, std::uint32_t, const AccessContext&) {}

void FifoPolicy::on_fill(std::uint64_t set, std::uint32_t way, const AccessContext&) {
  fill_tick_[set * ways_ + way] = ++tick_;
}

// ---------- Random ----------

std::unique_ptr<ReplacementPolicy> RandomPolicy::clone() const {
  return std::make_unique<RandomPolicy>(seed_);
}

void RandomPolicy::attach(std::uint64_t, std::uint32_t ways) { ways_ = ways; }

std::uint32_t RandomPolicy::choose_victim(std::uint64_t, std::span<const PageIndex>, const AccessContext&) {
  return static_cast<std::uint32_t>(rng_.below(ways_));
}

void RandomPolicy::on_hit(std::uint64_t, std::uint32_t, const AccessContext&) {}
void RandomPolicy::on_fill(std::uint64_t, std::uint32_t, const AccessContext&) {}

// ---------- LFU ----------

std::unique_ptr<ReplacementPolicy> LfuPolicy::clone() const {
  return std::make_unique<LfuPolicy>();
}

void LfuPolicy::attach(std::uint64_t sets, std::uint32_t ways) {
  ways_ = ways;
  freq_.assign(sets * ways, 0);
}

std::uint32_t LfuPolicy::choose_victim(std::uint64_t set, std::span<const PageIndex>, const AccessContext&) {
  const auto base = set * ways_;
  std::uint32_t victim = 0;
  for (std::uint32_t way = 1; way < ways_; ++way) {
    if (freq_[base + way] < freq_[base + victim]) victim = way;
  }
  return victim;
}

void LfuPolicy::on_hit(std::uint64_t set, std::uint32_t way, const AccessContext&) {
  ++freq_[set * ways_ + way];
}

void LfuPolicy::on_fill(std::uint64_t set, std::uint32_t way, const AccessContext&) {
  freq_[set * ways_ + way] = 1;
}

// ---------- CLOCK ----------

std::unique_ptr<ReplacementPolicy> ClockPolicy::clone() const {
  return std::make_unique<ClockPolicy>();
}

void ClockPolicy::attach(std::uint64_t sets, std::uint32_t ways) {
  ways_ = ways;
  ref_.assign(sets * ways, 0);
  hand_.assign(sets, 0);
}

std::uint32_t ClockPolicy::choose_victim(std::uint64_t set, std::span<const PageIndex>, const AccessContext&) {
  const auto base = set * ways_;
  std::uint32_t& hand = hand_[set];
  // Sweep: clear reference bits until one block is found unreferenced.
  // Terminates within 2 revolutions because bits only get cleared.
  for (std::uint32_t step = 0; step < 2 * ways_; ++step) {
    const std::uint32_t way = hand;
    hand = (hand + 1) % ways_;
    if (ref_[base + way] == 0) return way;
    ref_[base + way] = 0;
  }
  return hand;  // unreachable in practice; appease control flow
}

void ClockPolicy::on_hit(std::uint64_t set, std::uint32_t way, const AccessContext&) {
  ref_[set * ways_ + way] = 1;
}

void ClockPolicy::on_fill(std::uint64_t set, std::uint32_t way, const AccessContext&) {
  ref_[set * ways_ + way] = 1;
}

}  // namespace icgmm::cache
