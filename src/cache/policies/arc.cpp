#include "cache/policies/arc.hpp"

#include <algorithm>
#include <memory>

namespace icgmm::cache {

// ---------- ARC ----------

std::unique_ptr<ReplacementPolicy> ArcPolicy::clone() const {
  return std::make_unique<ArcPolicy>();
}

void ArcPolicy::attach(std::uint64_t sets, std::uint32_t ways) {
  ways_ = ways;
  tick_ = 0;
  list_.assign(sets * ways, List::kT1);
  stamp_.assign(sets * ways, 0);
  sets_.assign(sets, SetState{});
}

void ArcPolicy::ghost_insert(std::vector<PageIndex>& ghost, PageIndex page) {
  ghost.push_back(page);
  if (ghost.size() > ways_) ghost.erase(ghost.begin());
}

bool ArcPolicy::ghost_erase(std::vector<PageIndex>& ghost, PageIndex page) {
  const auto it = std::find(ghost.begin(), ghost.end(), page);
  if (it == ghost.end()) return false;
  ghost.erase(it);
  return true;
}

std::uint32_t ArcPolicy::choose_victim(std::uint64_t set,
                                       std::span<const PageIndex> resident,
                                       const AccessContext&) {
  SetState& state = sets_[set];
  const auto base = set * ways_;

  // Count T1 occupancy and find the LRU block of each list.
  std::uint32_t t1_count = 0;
  std::uint32_t lru_t1 = ways_, lru_t2 = ways_;
  for (std::uint32_t way = 0; way < ways_; ++way) {
    if (list_[base + way] == List::kT1) {
      ++t1_count;
      if (lru_t1 == ways_ || stamp_[base + way] < stamp_[base + lru_t1]) {
        lru_t1 = way;
      }
    } else {
      if (lru_t2 == ways_ || stamp_[base + way] < stamp_[base + lru_t2]) {
        lru_t2 = way;
      }
    }
  }

  // REPLACE: evict from T1 when it exceeds its target p, else from T2.
  std::uint32_t victim;
  if (lru_t1 != ways_ &&
      (lru_t2 == ways_ || static_cast<double>(t1_count) > state.p)) {
    victim = lru_t1;
  } else {
    victim = lru_t2 != ways_ ? lru_t2 : lru_t1;
  }
  // Remember the victim in the ghost list matching the list it was on.
  if (victim < resident.size()) {
    auto& ghost = list_[base + victim] == List::kT1 ? state.b1 : state.b2;
    ghost_insert(ghost, resident[victim]);
  }
  return victim;
}

void ArcPolicy::on_hit(std::uint64_t set, std::uint32_t way,
                       const AccessContext&) {
  // Any re-reference promotes to the frequency list T2.
  list_[set * ways_ + way] = List::kT2;
  stamp_[set * ways_ + way] = ++tick_;
}

void ArcPolicy::on_fill(std::uint64_t set, std::uint32_t way,
                        const AccessContext& ctx) {
  SetState& state = sets_[set];
  const auto idx = set * ways_ + way;

  // Ghost hits adapt p: a B1 hit means T1 was too small; B2 the opposite.
  if (ghost_erase(state.b1, ctx.page)) {
    const double delta =
        state.b1.size() >= state.b2.size()
            ? 1.0
            : static_cast<double>(state.b2.size()) /
                  std::max<std::size_t>(1, state.b1.size());
    state.p = std::min<double>(state.p + delta, ways_);
    list_[idx] = List::kT2;  // returning page is frequency-proven
  } else if (ghost_erase(state.b2, ctx.page)) {
    const double delta =
        state.b2.size() >= state.b1.size()
            ? 1.0
            : static_cast<double>(state.b1.size()) /
                  std::max<std::size_t>(1, state.b2.size());
    state.p = std::max(state.p - delta, 0.0);
    list_[idx] = List::kT2;
  } else {
    list_[idx] = List::kT1;  // brand-new page starts on the recency list
  }
  stamp_[idx] = ++tick_;
}

// ---------- SRRIP ----------

std::unique_ptr<ReplacementPolicy> SrripPolicy::clone() const {
  return std::make_unique<SrripPolicy>(max_rrpv_);
}

void SrripPolicy::attach(std::uint64_t sets, std::uint32_t ways) {
  ways_ = ways;
  rrpv_.assign(sets * ways, max_rrpv_);
}

std::uint32_t SrripPolicy::choose_victim(std::uint64_t set,
                                         std::span<const PageIndex>,
                                         const AccessContext&) {
  const auto base = set * ways_;
  // Find a block with RRPV == max; age everyone until one appears.
  while (true) {
    for (std::uint32_t way = 0; way < ways_; ++way) {
      if (rrpv_[base + way] == max_rrpv_) return way;
    }
    for (std::uint32_t way = 0; way < ways_; ++way) {
      ++rrpv_[base + way];
    }
  }
}

void SrripPolicy::on_hit(std::uint64_t set, std::uint32_t way,
                         const AccessContext&) {
  rrpv_[set * ways_ + way] = 0;  // near-immediate re-reference
}

void SrripPolicy::on_fill(std::uint64_t set, std::uint32_t way,
                          const AccessContext&) {
  // Insert with a long predicted interval: scans age out quickly.
  rrpv_[set * ways_ + way] = static_cast<std::uint8_t>(max_rrpv_ - 1);
}

}  // namespace icgmm::cache
