#include "cache/policies/gmm_policy.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace icgmm::cache {

const char* to_string(GmmStrategy s) noexcept {
  switch (s) {
    case GmmStrategy::kCachingOnly: return "GMM-caching";
    case GmmStrategy::kEvictionOnly: return "GMM-eviction";
    case GmmStrategy::kCachingEviction: return "GMM-caching-eviction";
  }
  return "GMM-unknown";
}

const char* to_string(ScorerBackend b) noexcept {
  switch (b) {
    case ScorerBackend::kFloat: return "float";
    case ScorerBackend::kQuantized: return "quantized";
  }
  return "unknown";
}

GmmPolicy::GmmPolicy(ScoreFn scorer, GmmPolicyConfig cfg)
    : ReplacementPolicy(to_string(cfg.strategy)),
      scorer_(std::move(scorer)),
      cfg_(cfg) {
  if (!scorer_) throw std::invalid_argument("GmmPolicy: null scorer");
}

void GmmPolicy::set_batch_scorer(BatchScoreFn batch) {
  batch_scorer_ = std::move(batch);
}

std::unique_ptr<ReplacementPolicy> GmmPolicy::clone() const {
  // The batch scorer is deliberately NOT copied: it is wiring to external
  // scoring plumbing (typically a per-shard InferenceBatcher with mutable
  // snapshot state), and sharing one instance across clones serving from
  // different threads would race. The clone falls back to the per-page
  // scorer — numerically identical by the set_batch_scorer contract —
  // until its owner re-wires a batch scorer of its own.
  return std::make_unique<GmmPolicy>(scorer_, cfg_);
}

void GmmPolicy::attach(std::uint64_t sets, std::uint32_t ways) {
  ways_ = ways;
  tick_ = 0;
  score_.assign(sets * ways, 0.0);
  last_use_.assign(sets * ways, 0);
  inferences_ = 0;
  pending_valid_ = false;
}

double GmmPolicy::score_page(const AccessContext& ctx) {
  if (pending_valid_ && pending_page_ == ctx.page &&
      pending_time_ == ctx.timestamp) {
    return pending_score_;  // admission already scored this miss
  }
  ++inferences_;
  pending_score_ = scorer_(ctx.page, ctx.timestamp);
  pending_page_ = ctx.page;
  pending_time_ = ctx.timestamp;
  pending_valid_ = true;
  return pending_score_;
}

bool GmmPolicy::should_admit(const AccessContext& ctx) {
  if (cfg_.strategy == GmmStrategy::kEvictionOnly) return true;
  // Deferred mode: admit provisionally, no inference on the serving path.
  // The decision thread rescores the page later and demotes it if the
  // model scores it below the threshold.
  if (cfg_.deferred) return true;
  return score_page(ctx) >= cfg_.threshold;
}

std::uint32_t GmmPolicy::choose_victim(std::uint64_t set,
                                       std::span<const PageIndex> resident,
                                       const AccessContext& ctx) {
  const auto base = set * ways_;
  std::uint32_t victim = 0;
  if (cfg_.strategy == GmmStrategy::kCachingOnly) {
    // LRU fallback — smart caching changes admission only.
    std::uint64_t oldest = last_use_[base];
    for (std::uint32_t way = 1; way < ways_; ++way) {
      if (last_use_[base + way] < oldest) {
        victim = way;
        oldest = last_use_[base + way];
      }
    }
    return victim;
  }

  if (cfg_.rescore_set_on_evict && !cfg_.deferred) {
    // Refresh the set's scores at the current timestamp. The II=1 pipeline
    // streams all ways through the GMM in `assoc` extra cycles, so this
    // counts as part of the single per-miss engine invocation.
    const auto count = static_cast<std::uint32_t>(
        std::min<std::size_t>(resident.size(), ways_));
    if (batch_scorer_) {
      batch_scorer_(resident.first(count), ctx.timestamp,
                    std::span<double>(score_.data() + base, count));
    } else {
      for (std::uint32_t way = 0; way < count; ++way) {
        score_[base + way] = scorer_(resident[way], ctx.timestamp);
      }
    }
  }
  // Smart eviction: lowest GMM score leaves first (Fig. 4), with two
  // hardware-standard guards: ties break toward the least recently used,
  // and the MRU block is never the victim (a just-fetched page must
  // survive its burst even when the model scores it cold — without this,
  // streaming bursts thrash).
  std::uint32_t mru = 0;
  std::uint64_t newest = last_use_[base];
  for (std::uint32_t way = 1; way < ways_; ++way) {
    if (last_use_[base + way] > newest) {
      mru = way;
      newest = last_use_[base + way];
    }
  }
  victim = mru == 0 ? 1 : 0;
  // Best-so-far kept in locals: the victim's score/recency were re-read
  // from the tables on every iteration before.
  double best_score = score_[base + victim];
  std::uint64_t best_use = last_use_[base + victim];
  for (std::uint32_t way = 0; way < ways_; ++way) {
    if (way == mru) continue;
    const double s = score_[base + way];
    const std::uint64_t use = last_use_[base + way];
    if (s < best_score || (s == best_score && use < best_use)) {
      victim = way;
      best_score = s;
      best_use = use;
    }
  }
  return victim;
}

void GmmPolicy::touch(std::uint64_t set, std::uint32_t way) {
  last_use_[set * ways_ + way] = ++tick_;
}

void GmmPolicy::on_hit(std::uint64_t set, std::uint32_t way,
                       const AccessContext& ctx) {
  touch(set, way);
  if (cfg_.refresh_on_hit) {
    pending_valid_ = false;  // force a fresh inference
    score_[set * ways_ + way] = score_page(ctx);
    pending_valid_ = false;
  }
}

void GmmPolicy::on_fill(std::uint64_t set, std::uint32_t way,
                        const AccessContext& ctx) {
  if (cfg_.deferred) {
    // The block carries a neutral provisional score until the decision
    // thread's rescore lands (or forever, if that rescore was dropped
    // from a full ring — still a bounded, accounted degradation).
    score_[set * ways_ + way] = provisional_score();
    touch(set, way);
    return;
  }
  // kEvictionOnly never scored during admission; score now so the block
  // carries its GMM score into future eviction decisions.
  score_[set * ways_ + way] = score_page(ctx);
  touch(set, way);
  pending_valid_ = false;  // the pending score is consumed by this fill
}

}  // namespace icgmm::cache
