// ARC (Adaptive Replacement Cache, Megiddo & Modha, FAST'03) adapted to a
// set-associative cache: per-set recency (T1) vs frequency (T2) partitions
// with ghost lists (B1/B2) steering the adaptation parameter. A stronger
// classic baseline than LRU for the extended Fig. 6 comparison — ARC is
// scan-resistant like the GMM policy but needs no training.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/policy.hpp"

namespace icgmm::cache {

class ArcPolicy final : public ReplacementPolicy {
 public:
  ArcPolicy() : ReplacementPolicy("ARC") {}

  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  std::uint32_t choose_victim(std::uint64_t set,
                              std::span<const PageIndex> resident,
                              const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

  /// Adaptation target for T1 in the given set (tests/introspection).
  double target_t1(std::uint64_t set) const { return sets_.at(set).p; }

 private:
  /// Per-way state: which list the block lives on and its recency stamp.
  enum class List : std::uint8_t { kT1, kT2 };

  struct SetState {
    double p = 0.0;  ///< target size of T1 (recency list)
    // Ghost lists: recently evicted pages (bounded at `ways` entries each).
    std::vector<PageIndex> b1;
    std::vector<PageIndex> b2;
  };

  void ghost_insert(std::vector<PageIndex>& ghost, PageIndex page);
  static bool ghost_erase(std::vector<PageIndex>& ghost, PageIndex page);

  std::uint32_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<List> list_;
  std::vector<std::uint64_t> stamp_;
  std::vector<SetState> sets_;
};

/// SRRIP (Jaleel et al., ISCA'10): static re-reference interval prediction
/// with 2-bit counters — the standard hardware-cheap scan-resistant
/// baseline.
class SrripPolicy final : public ReplacementPolicy {
 public:
  explicit SrripPolicy(std::uint8_t max_rrpv = 3)
      : ReplacementPolicy("SRRIP"), max_rrpv_(max_rrpv) {}

  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  std::uint32_t choose_victim(std::uint64_t set,
                              std::span<const PageIndex> resident,
                              const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

 private:
  std::uint8_t max_rrpv_;
  std::uint32_t ways_ = 0;
  std::vector<std::uint8_t> rrpv_;
};

}  // namespace icgmm::cache
