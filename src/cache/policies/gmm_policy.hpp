// GMM-scored cache policy (paper §3.2 / Fig. 4).
//
// On a miss the policy engine computes the GMM score of the requested page
// at the current logical timestamp. "Smart caching" admits the page only
// when the score clears a threshold; "smart eviction" replaces the LRU
// counter with the stored GMM score and evicts the lowest-scoring block in
// the set. Scores are stored at fill time and NOT recomputed on hits (the
// paper bypasses the GMM on hits); refresh_on_hit exists as an ablation.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "cache/policy.hpp"

namespace icgmm::cache {

/// Scoring callback: log-domain GMM score of (page, timestamp). Log domain
/// keeps thresholding monotone while avoiding density underflow.
using ScoreFn = std::function<double(PageIndex, Timestamp)>;

/// Batched scoring callback: log-scores of `pages[i]` at one shared
/// timestamp written to `out[i]` (out.size() >= pages.size()). Lets the
/// eviction-time rescore of a whole set run over a contiguous span with one
/// model-snapshot load instead of one indirect call per way.
using BatchScoreFn =
    std::function<void(std::span<const PageIndex>, Timestamp, std::span<double>)>;

/// The three strategies evaluated in Fig. 6.
enum class GmmStrategy : std::uint8_t {
  kCachingOnly,      ///< GMM admission, LRU eviction
  kEvictionOnly,     ///< always admit, GMM eviction
  kCachingEviction,  ///< GMM admission + GMM eviction
};

const char* to_string(GmmStrategy s) noexcept;

/// Which scoring kernel the wiring site (PolicyEngine, runtime::Runtime)
/// builds behind the ScoreFn closures. The policy itself is
/// backend-agnostic — it only compares the doubles it is handed — so this
/// lives in the config purely as plumbing the wiring site reads.
enum class ScorerBackend : std::uint8_t {
  kFloat,      ///< gmm::ScorerKernel (double polynomial exp/log)
  kQuantized,  ///< gmm::QuantScorerKernel (fixed-point, LUT exp/log)
};

const char* to_string(ScorerBackend b) noexcept;

struct GmmPolicyConfig {
  GmmStrategy strategy = GmmStrategy::kCachingEviction;
  /// Log-score admission threshold (tuned per trace; see core/threshold).
  double threshold = -std::numeric_limits<double>::infinity();
  /// Ablation: recompute the stored score when a block hits.
  bool refresh_on_hit = false;
  /// Rescore the set's resident blocks at the *current* timestamp when
  /// choosing a victim (paper §3.2: blocks are sorted by GMM score at
  /// eviction time, "on-the-fly using current status trace information").
  /// The II=1 pipeline makes this nearly free in hardware (assoc extra
  /// cycles). Off = compare fill-time scores, which go stale as the
  /// temporal phase moves on — kept as an ablation.
  bool rescore_set_on_evict = true;
  /// Eventual-policy mode (the async miss pipeline): NO inference runs on
  /// the serving path. should_admit admits everything provisionally,
  /// choose_victim ranks the *stored* scores as-is (no inline set
  /// rescore; LRU fallback for kCachingOnly as before), and on_fill
  /// stores a neutral provisional score — the admission threshold when
  /// finite, else 0 — instead of calling the scorer. A decision thread
  /// later rescores the set through apply_deferred_score() and demotes
  /// provisional admissions the model rejects. Default off = the
  /// synchronous mode, the bit-identity anchor every golden test pins.
  bool deferred = false;
  /// Scoring backend the wiring site builds (see ScorerBackend). With
  /// kQuantized the wiring site also snaps `threshold` onto the
  /// quantized score grid (QuantScorerKernel::quantize_threshold), so
  /// the admission compare is an exact integer comparison.
  ScorerBackend scorer = ScorerBackend::kFloat;
  /// Q-format fraction width for the quantized backend.
  unsigned quant_frac_bits = 16;
};

class GmmPolicy final : public ReplacementPolicy {
 public:
  GmmPolicy(ScoreFn scorer, GmmPolicyConfig cfg);

  /// Optional batched scorer used for the eviction-time set rescore. Must
  /// agree numerically with the per-page scorer (same model, same math) or
  /// admission and eviction would judge pages on different scales.
  void set_batch_scorer(BatchScoreFn batch);

  /// NOTE: the per-page scorer closure is *copied*, not re-created — a
  /// clone used from another thread shares whatever state it captures, so
  /// scorers must capture immutable state (e.g. a model by value, as
  /// PolicyEngine::score_fn does) for clones to be independent. The batch
  /// scorer is NOT carried over: it is per-instance wiring to external
  /// (typically per-shard, mutable) scoring plumbing, and each clone's
  /// owner must call set_batch_scorer again — see runtime::Runtime's GMM
  /// mode, which builds one InferenceBatcher per shard.
  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  bool should_admit(const AccessContext& ctx) override;
  std::uint32_t choose_victim(std::uint64_t set,
                              std::span<const PageIndex> resident,
                              const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

  const GmmPolicyConfig& config() const noexcept { return cfg_; }

  /// Number of GMM inferences performed — the quantity the dataflow
  /// architecture overlaps with SSD access (one per miss).
  std::uint64_t inferences() const noexcept { return inferences_; }

  /// Stored score of a resident block (tests/introspection).
  double stored_score(std::uint64_t set, std::uint32_t way) const {
    return score_.at(set * ways_ + way);
  }

  // --- deferred-decision application (async miss pipeline) -----------------
  // Called by the decision thread under the owning shard's lock, never by
  // the cache itself.

  /// Overwrites the stored score of (set, way) with a deferred rescore at
  /// the enqueued timestamp — the asynchronous replacement for the inline
  /// eviction-time set rescore.
  void apply_deferred_score(std::uint64_t set, std::uint32_t way,
                            double score) {
    score_.at(set * ways_ + way) = score;
  }

  /// Accounts GMM scorings the decision thread performed on this policy's
  /// behalf, so inferences() stays comparable between the synchronous and
  /// deferred modes.
  void note_deferred_inferences(std::uint64_t n) noexcept { inferences_ += n; }

  /// Score a deferred fill carries until its rescore lands: exactly at the
  /// admission boundary (or 0 when the threshold is -inf), so a
  /// provisional block neither pins its set nor is the automatic victim.
  double provisional_score() const noexcept {
    return std::isfinite(cfg_.threshold) ? cfg_.threshold : 0.0;
  }

 private:
  double score_page(const AccessContext& ctx);
  void touch(std::uint64_t set, std::uint32_t way);

  ScoreFn scorer_;
  BatchScoreFn batch_scorer_;  ///< null: rescore falls back to scorer_
  GmmPolicyConfig cfg_;
  std::uint32_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<double> score_;           ///< per-block GMM score table
  std::vector<std::uint64_t> last_use_; ///< LRU fallback for kCachingOnly
  std::uint64_t inferences_ = 0;

  // One inference per miss: should_admit caches the score for on_fill.
  bool pending_valid_ = false;
  PageIndex pending_page_ = 0;
  Timestamp pending_time_ = 0;
  double pending_score_ = 0.0;
};

}  // namespace icgmm::cache
