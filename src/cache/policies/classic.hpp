// Classic replacement policies: LRU (the paper's baseline), FIFO, Random,
// LFU, and CLOCK. All admit every miss; they differ only in victim choice.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/policy.hpp"
#include "common/rng.hpp"

namespace icgmm::cache {

/// Least Recently Used — the baseline in Fig. 6 / Table 1.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy() : ReplacementPolicy("LRU") {}

  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  std::uint32_t choose_victim(std::uint64_t set, std::span<const PageIndex> resident, const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

 private:
  void touch(std::uint64_t set, std::uint32_t way);

  std::uint32_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> last_use_;
};

/// First-In First-Out: victim is the oldest fill.
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy() : ReplacementPolicy("FIFO") {}

  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  std::uint32_t choose_victim(std::uint64_t set, std::span<const PageIndex> resident, const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

 private:
  std::uint32_t ways_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> fill_tick_;
};

/// Uniform-random victim (deterministic given the seed).
class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 0xace5eedull)
      : ReplacementPolicy("Random"), seed_(seed), rng_(seed) {}

  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  std::uint32_t choose_victim(std::uint64_t set, std::span<const PageIndex> resident, const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

 private:
  std::uint32_t ways_ = 0;
  std::uint64_t seed_;  ///< kept so clone() restarts the same stream
  Rng rng_;
};

/// Least Frequently Used with per-fill reset (in-cache frequency).
class LfuPolicy final : public ReplacementPolicy {
 public:
  LfuPolicy() : ReplacementPolicy("LFU") {}

  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  std::uint32_t choose_victim(std::uint64_t set, std::span<const PageIndex> resident, const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

 private:
  std::uint32_t ways_ = 0;
  std::vector<std::uint64_t> freq_;
};

/// CLOCK (second-chance): reference bits plus a per-set hand.
class ClockPolicy final : public ReplacementPolicy {
 public:
  ClockPolicy() : ReplacementPolicy("CLOCK") {}

  std::unique_ptr<ReplacementPolicy> clone() const override;
  void attach(std::uint64_t sets, std::uint32_t ways) override;
  std::uint32_t choose_victim(std::uint64_t set, std::span<const PageIndex> resident, const AccessContext& ctx) override;
  void on_hit(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;
  void on_fill(std::uint64_t set, std::uint32_t way, const AccessContext& ctx) override;

 private:
  std::uint32_t ways_ = 0;
  std::vector<std::uint8_t> ref_;
  std::vector<std::uint32_t> hand_;
};

}  // namespace icgmm::cache
