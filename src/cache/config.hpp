// DRAM-cache geometry. Paper case study: 64 MB capacity, 4 KB blocks
// (one SSD page), 8-way set associative.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"

namespace icgmm::cache {

struct CacheConfig {
  std::uint64_t capacity_bytes = 64ull << 20;
  std::uint32_t block_bytes = 4096;
  std::uint32_t associativity = 8;

  constexpr std::uint64_t blocks() const noexcept {
    return capacity_bytes / block_bytes;
  }
  constexpr std::uint64_t sets() const noexcept {
    return blocks() / associativity;
  }

  /// Throws std::invalid_argument on a non-realizable geometry.
  void validate() const {
    if (block_bytes == 0 || (block_bytes & (block_bytes - 1)) != 0) {
      throw std::invalid_argument("CacheConfig: block_bytes must be a power of two");
    }
    if (associativity == 0) {
      throw std::invalid_argument("CacheConfig: associativity must be positive");
    }
    if (capacity_bytes % block_bytes != 0) {
      throw std::invalid_argument("CacheConfig: capacity not a multiple of block size");
    }
    if (blocks() % associativity != 0 || blocks() < associativity) {
      throw std::invalid_argument("CacheConfig: blocks not divisible into sets");
    }
  }

  friend constexpr bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

}  // namespace icgmm::cache
