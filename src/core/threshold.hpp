// Admission-threshold selection. The paper thresholds the GMM score to
// decide caching ("a certain threshold", §3.2) without specifying how it
// is chosen; we tune it as a percentile of the training-score
// distribution, optionally refined by simulating a few candidates on a
// trace prefix and keeping the one with the lowest miss rate.
#pragma once

#include <span>
#include <vector>

#include "core/policy_engine.hpp"
#include "sim/engine.hpp"

namespace icgmm::core {

/// Log-score at quantile `q` of the (sorted) training scores. q = 0
/// admits everything; q = 0.5 bypasses the colder half.
double threshold_at_percentile(std::span<const double> sorted_scores, double q);

struct ThresholdSweepPoint {
  double percentile = 0.0;
  double threshold = 0.0;
  double miss_rate = 0.0;
  double amat_us = 0.0;
};

/// Simulates each candidate percentile on `tuning_trace` with the given
/// strategy and returns all the points (lowest-miss-rate first ordering is
/// NOT applied; callers sort or scan). Used by the tuner and Ablation B.
std::vector<ThresholdSweepPoint> sweep_thresholds(
    const PolicyEngine& engine, const trace::Trace& tuning_trace,
    const sim::EngineConfig& engine_cfg, cache::GmmStrategy strategy,
    std::span<const double> percentiles);

/// Convenience: sweep a default percentile grid and return the threshold
/// with the lowest miss rate.
double tune_threshold(const PolicyEngine& engine,
                      const trace::Trace& tuning_trace,
                      const sim::EngineConfig& engine_cfg,
                      cache::GmmStrategy strategy);

}  // namespace icgmm::core
