#include "core/policy_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "gmm/kernel.hpp"
#include "gmm/quant_kernel.hpp"

namespace icgmm::core {

const gmm::FitReport& PolicyEngine::train(const trace::Trace& collected) {
  // Warm-up trim, with the head cut rounded DOWN to an access-shot
  // boundary: Algorithm-1 timestamps are periodic with the shot, so an
  // unaligned cut would train the GMM on a time axis phase-shifted from
  // what it sees at run time and corrupt every temporal pattern learned.
  const std::uint64_t shot_records =
      static_cast<std::uint64_t>(cfg_.transform.len_window) *
      trace::TimestampTransform(cfg_.transform).timestamp_bound();
  auto head = static_cast<std::size_t>(
      cfg_.trim.head_fraction * static_cast<double>(collected.size()));
  if (shot_records > 0) head -= head % shot_records;
  const auto tail = static_cast<std::size_t>(
      cfg_.trim.tail_fraction * static_cast<double>(collected.size()));
  const std::size_t keep =
      collected.size() > head + tail ? collected.size() - head - tail
                                     : collected.size() - head;
  const trace::Trace trimmed = collected.slice(head, keep);

  const std::vector<trace::GmmSample> all =
      trace::to_gmm_samples(trimmed, cfg_.transform);
  const std::vector<trace::GmmSample> sub =
      trace::stride_subsample(all, cfg_.train_subsample);

  gmm::EmTrainer trainer(cfg_.em);
  model_ = trainer.fit(sub);
  report_ = trainer.report();

  training_scores_.clear();
  training_scores_.reserve(sub.size());
  for (const auto& s : sub) {
    training_scores_.push_back(model_->log_score(s.page, s.time));
  }
  std::sort(training_scores_.begin(), training_scores_.end());
  return report_;
}

void PolicyEngine::load(gmm::GaussianMixture model) {
  model_ = std::move(model);
  training_scores_.clear();
}

const gmm::GaussianMixture& PolicyEngine::model() const {
  if (!model_) throw std::logic_error("PolicyEngine: not trained");
  return *model_;
}

cache::ScoreFn PolicyEngine::score_fn() const {
  if (!model_) throw std::logic_error("PolicyEngine: not trained");
  // Capture the flat SoA kernel snapshot, not the mixture: scorers outlive
  // the engine freely, the kernel is a few KB (K * 6 doubles), and copies
  // (e.g. policy clones) get independent timestamp caches, so every clone
  // stays safe to drive from its own thread.
  return [kernel = model_->make_kernel()](PageIndex page, Timestamp ts) {
    return kernel.score_one(page, ts);
  };
}

cache::ScoreFn PolicyEngine::quant_score_fn(unsigned frac_bits) const {
  if (!model_) throw std::logic_error("PolicyEngine: not trained");
  // Same capture discipline as score_fn: the quantized kernel snapshot
  // travels by value, so clones get independent timestamp caches.
  return [kernel = gmm::QuantScorerKernel(*model_, {.frac_bits = frac_bits},
                                          /*timestamp_cache=*/true)](
             PageIndex page, Timestamp ts) {
    return kernel.score_one(page, ts);
  };
}

std::unique_ptr<cache::GmmPolicy> PolicyEngine::make_policy(
    cache::GmmStrategy strategy, double threshold, bool refresh_on_hit) const {
  return std::make_unique<cache::GmmPolicy>(
      score_fn(), cache::GmmPolicyConfig{.strategy = strategy,
                                         .threshold = threshold,
                                         .refresh_on_hit = refresh_on_hit});
}

std::unique_ptr<cache::GmmPolicy> PolicyEngine::make_policy(
    cache::GmmPolicyConfig cfg) const {
  if (cfg.scorer == cache::ScorerBackend::kQuantized) {
    cfg.threshold = gmm::QuantScorerKernel::quantize_threshold(
        cfg.threshold, cfg.quant_frac_bits);
    return std::make_unique<cache::GmmPolicy>(
        quant_score_fn(cfg.quant_frac_bits), cfg);
  }
  return std::make_unique<cache::GmmPolicy>(score_fn(), cfg);
}

}  // namespace icgmm::core
