// IcgmmSystem — the end-to-end facade: collect (generate) a trace, train
// the GMM policy engine, tune the admission threshold, and evaluate any
// cache policy on the evaluation split. This is the API the examples and
// the Fig. 6 / Table 1 benches drive.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/policies/classic.hpp"
#include "core/policy_engine.hpp"
#include "core/threshold.hpp"
#include "runtime/runtime.hpp"
#include "sim/engine.hpp"
#include "trace/generator.hpp"

namespace icgmm::core {

enum class BaselinePolicy : std::uint8_t { kLru, kFifo, kRandom, kLfu, kClock };

const char* to_string(BaselinePolicy p) noexcept;

std::unique_ptr<cache::ReplacementPolicy> make_baseline(BaselinePolicy p);

struct IcgmmConfig {
  PolicyEngineConfig policy;
  sim::EngineConfig engine;
  /// Requests from the head of the evaluation trace used for threshold
  /// tuning (0 = use the whole trace).
  std::size_t tuning_prefix = 200000;
  bool tune_threshold_by_simulation = true;
  /// Percentile used when simulation-based tuning is off.
  double threshold_percentile = 0.05;
};

/// Result bundle for one benchmark: LRU baseline plus the three GMM
/// strategies, with the paper's Fig. 6 "pick the best" selection.
struct StrategyComparison {
  std::string benchmark;
  sim::RunResult lru;
  sim::RunResult gmm_caching;
  sim::RunResult gmm_eviction;
  sim::RunResult gmm_both;

  const sim::RunResult& best_gmm() const noexcept;
  /// Absolute miss-rate reduction of the best strategy vs LRU (Fig. 6).
  double miss_rate_reduction() const noexcept;
  /// Relative AMAT reduction of the best strategy vs LRU (Table 1), %.
  double amat_reduction_percent() const noexcept;
};

class IcgmmSystem {
 public:
  explicit IcgmmSystem(IcgmmConfig cfg = {});

  const IcgmmConfig& config() const noexcept { return cfg_; }
  PolicyEngine& policy_engine() noexcept { return engine_; }
  const PolicyEngine& policy_engine() const noexcept { return engine_; }

  /// Trains the GMM on the trace (which is also the evaluation workload —
  /// the paper trains and evaluates per benchmark).
  void train(const trace::Trace& collected);

  /// Runs one GMM strategy over the trace. Threshold: tuned (if enabled)
  /// for admission strategies; irrelevant for eviction-only.
  sim::RunResult run_gmm(const trace::Trace& trace, cache::GmmStrategy strategy);

  /// Runs a classic baseline policy over the trace.
  sim::RunResult run_baseline(const trace::Trace& trace, BaselinePolicy p);

  /// LRU + all three GMM strategies (the full Fig. 6 column group).
  StrategyComparison compare(const trace::Trace& trace);

  /// The admission threshold run_gmm would use for this trace/strategy —
  /// tuned by simulation or percentile per the system config. Public so a
  /// serving runtime can be wired with the same threshold without a full
  /// evaluation run.
  double pick_threshold(const trace::Trace& trace,
                        cache::GmmStrategy strategy) const;

  /// Builds a concurrent serving runtime whose per-shard GMM policies
  /// score against a snapshot of the trained model (drift adaptation per
  /// cfg.adapt). `scorer` selects the float kernel or the fixed-point
  /// QuantScorerKernel serving path (the runtime snaps `threshold` onto
  /// the quantized grid in that case). Throws std::logic_error when not
  /// trained.
  std::unique_ptr<runtime::Runtime> make_runtime(
      runtime::RuntimeConfig cfg, cache::GmmStrategy strategy,
      double threshold,
      cache::ScorerBackend scorer = cache::ScorerBackend::kFloat) const;

  /// The threshold the last admission-strategy run used.
  double last_threshold() const noexcept { return last_threshold_; }

  /// The trained policy engine — lets callers wire additional scorers
  /// (e.g. a shadow GmmPolicy) against the same model.
  const PolicyEngine& engine() const noexcept { return engine_; }

 private:
  IcgmmConfig cfg_;
  PolicyEngine engine_;
  double last_threshold_ = 0.0;
};

}  // namespace icgmm::core
