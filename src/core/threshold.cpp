#include "core/threshold.hpp"

#include <algorithm>
#include <array>
#include <limits>

namespace icgmm::core {

double threshold_at_percentile(std::span<const double> sorted_scores,
                               double q) {
  if (sorted_scores.empty()) return -std::numeric_limits<double>::infinity();
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return -std::numeric_limits<double>::infinity();
  const auto idx = std::min(
      sorted_scores.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_scores.size())));
  return sorted_scores[idx];
}

std::vector<ThresholdSweepPoint> sweep_thresholds(
    const PolicyEngine& engine, const trace::Trace& tuning_trace,
    const sim::EngineConfig& engine_cfg, cache::GmmStrategy strategy,
    std::span<const double> percentiles) {
  std::vector<ThresholdSweepPoint> points;
  points.reserve(percentiles.size());
  sim::EngineConfig cfg = engine_cfg;
  cfg.policy_runs_on_miss = true;
  for (double q : percentiles) {
    ThresholdSweepPoint point;
    point.percentile = q;
    point.threshold = threshold_at_percentile(engine.training_scores(), q);
    const sim::RunResult run = sim::run_trace(
        tuning_trace, cfg, engine.make_policy(strategy, point.threshold));
    point.miss_rate = run.miss_rate();
    point.amat_us = run.amat_us();
    points.push_back(point);
  }
  return points;
}

double tune_threshold(const PolicyEngine& engine,
                      const trace::Trace& tuning_trace,
                      const sim::EngineConfig& engine_cfg,
                      cache::GmmStrategy strategy) {
  // Coarse grid biased low: bypassing too much is far more dangerous than
  // bypassing too little (a wrongly bypassed hot page pays the SSD penalty
  // on every future access until readmitted).
  static constexpr std::array<double, 5> kGrid = {0.0, 0.02, 0.05, 0.10, 0.20};
  const auto points =
      sweep_thresholds(engine, tuning_trace, engine_cfg, strategy, kGrid);
  const auto best = std::min_element(
      points.begin(), points.end(),
      [](const auto& a, const auto& b) { return a.miss_rate < b.miss_rate; });
  return best == points.end() ? -std::numeric_limits<double>::infinity()
                              : best->threshold;
}

}  // namespace icgmm::core
