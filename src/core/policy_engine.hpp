// The cache policy engine (paper Fig. 5, left block): a trained GMM plus
// an admission threshold, exposed as the scorer the cache policy consumes.
#pragma once

#include <memory>
#include <optional>

#include "cache/policies/gmm_policy.hpp"
#include "gmm/em.hpp"
#include "gmm/mixture.hpp"
#include "trace/preprocess.hpp"
#include "trace/trace.hpp"

namespace icgmm::core {

struct PolicyEngineConfig {
  gmm::EmConfig em;                ///< K = 256 by default, per the paper
  trace::TrimConfig trim;          ///< drop first 20 % / last 10 %
  trace::TransformConfig transform;
  std::size_t train_subsample = 20000;  ///< EM sample budget (stride subsample)
};

/// Owns the trained model; hands out scorers and cache policies.
class PolicyEngine {
 public:
  explicit PolicyEngine(PolicyEngineConfig cfg = {}) : cfg_(cfg) {}

  const PolicyEngineConfig& config() const noexcept { return cfg_; }

  /// Trains the GMM on a collected trace (trim -> Algorithm 1 -> subsample
  /// -> EM). Returns the EM fit report.
  const gmm::FitReport& train(const trace::Trace& collected);

  /// Loads a pre-trained model instead of training.
  void load(gmm::GaussianMixture model);

  bool trained() const noexcept { return model_.has_value(); }
  const gmm::GaussianMixture& model() const;

  /// EM fit report of the last train() call.
  const gmm::FitReport& report() const noexcept { return report_; }

  /// Log-domain scorer bound to the trained model.
  cache::ScoreFn score_fn() const;

  /// Fixed-point scorer bound to the trained model: every score is an
  /// exact multiple of 2^-frac_bits (see gmm::QuantScorerKernel). Pair
  /// with a threshold snapped by gmm::QuantScorerKernel::quantize_threshold
  /// so admission compares on the same grid.
  cache::ScoreFn quant_score_fn(unsigned frac_bits = 16) const;

  /// Builds a cache policy for one of the Fig. 6 strategies.
  std::unique_ptr<cache::GmmPolicy> make_policy(
      cache::GmmStrategy strategy, double threshold,
      bool refresh_on_hit = false) const;

  /// Full-config overload: honors cfg.scorer — the quantized backend gets
  /// the fixed-point scorer and cfg.threshold snapped onto its grid.
  std::unique_ptr<cache::GmmPolicy> make_policy(
      cache::GmmPolicyConfig cfg) const;

  /// The training-set log-scores (sorted ascending) — threshold tuning
  /// reads percentiles off this.
  const std::vector<double>& training_scores() const noexcept {
    return training_scores_;
  }

 private:
  PolicyEngineConfig cfg_;
  std::optional<gmm::GaussianMixture> model_;
  gmm::FitReport report_;
  std::vector<double> training_scores_;
};

}  // namespace icgmm::core
