#include "core/icgmm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace icgmm::core {

const char* to_string(BaselinePolicy p) noexcept {
  switch (p) {
    case BaselinePolicy::kLru: return "LRU";
    case BaselinePolicy::kFifo: return "FIFO";
    case BaselinePolicy::kRandom: return "Random";
    case BaselinePolicy::kLfu: return "LFU";
    case BaselinePolicy::kClock: return "CLOCK";
  }
  return "unknown";
}

std::unique_ptr<cache::ReplacementPolicy> make_baseline(BaselinePolicy p) {
  switch (p) {
    case BaselinePolicy::kLru: return std::make_unique<cache::LruPolicy>();
    case BaselinePolicy::kFifo: return std::make_unique<cache::FifoPolicy>();
    case BaselinePolicy::kRandom: return std::make_unique<cache::RandomPolicy>();
    case BaselinePolicy::kLfu: return std::make_unique<cache::LfuPolicy>();
    case BaselinePolicy::kClock: return std::make_unique<cache::ClockPolicy>();
  }
  throw std::invalid_argument("unknown baseline policy");
}

const sim::RunResult& StrategyComparison::best_gmm() const noexcept {
  const sim::RunResult* best = &gmm_caching;
  if (gmm_eviction.miss_rate() < best->miss_rate()) best = &gmm_eviction;
  if (gmm_both.miss_rate() < best->miss_rate()) best = &gmm_both;
  return *best;
}

double StrategyComparison::miss_rate_reduction() const noexcept {
  return lru.miss_rate() - best_gmm().miss_rate();
}

double StrategyComparison::amat_reduction_percent() const noexcept {
  if (lru.amat_us() == 0.0) return 0.0;
  return (lru.amat_us() - best_gmm().amat_us()) / lru.amat_us() * 100.0;
}

IcgmmSystem::IcgmmSystem(IcgmmConfig cfg)
    : cfg_(std::move(cfg)), engine_(cfg_.policy) {}

void IcgmmSystem::train(const trace::Trace& collected) {
  engine_.train(collected);
}

double IcgmmSystem::pick_threshold(const trace::Trace& trace,
                                   cache::GmmStrategy strategy) const {
  if (strategy == cache::GmmStrategy::kEvictionOnly) {
    return -std::numeric_limits<double>::infinity();
  }
  if (!cfg_.tune_threshold_by_simulation) {
    return threshold_at_percentile(engine_.training_scores(),
                                   cfg_.threshold_percentile);
  }
  const trace::Trace prefix =
      cfg_.tuning_prefix > 0 && cfg_.tuning_prefix < trace.size()
          ? trace.slice(0, cfg_.tuning_prefix)
          : trace;
  return tune_threshold(engine_, prefix, cfg_.engine, strategy);
}

sim::RunResult IcgmmSystem::run_gmm(const trace::Trace& trace,
                                    cache::GmmStrategy strategy) {
  last_threshold_ = pick_threshold(trace, strategy);
  sim::EngineConfig cfg = cfg_.engine;
  cfg.policy_runs_on_miss = true;  // GMM scores every miss
  return sim::run_trace(trace, cfg,
                        engine_.make_policy(strategy, last_threshold_));
}

sim::RunResult IcgmmSystem::run_baseline(const trace::Trace& trace,
                                         BaselinePolicy p) {
  sim::EngineConfig cfg = cfg_.engine;
  cfg.policy_runs_on_miss = false;  // classic policies are free in hardware
  return sim::run_trace(trace, cfg, make_baseline(p));
}

std::unique_ptr<runtime::Runtime> IcgmmSystem::make_runtime(
    runtime::RuntimeConfig cfg, cache::GmmStrategy strategy,
    double threshold, cache::ScorerBackend scorer) const {
  // Same policy configuration make_policy hands the simulator, so a
  // 1-shard/1-thread runtime reproduces run_gmm decisions bit for bit
  // (with the default float scorer).
  return std::make_unique<runtime::Runtime>(
      cfg, engine_.model(),
      cache::GmmPolicyConfig{.strategy = strategy, .threshold = threshold,
                             .scorer = scorer});
}

StrategyComparison IcgmmSystem::compare(const trace::Trace& trace) {
  StrategyComparison cmp;
  cmp.benchmark = trace.name();
  cmp.lru = run_baseline(trace, BaselinePolicy::kLru);
  cmp.gmm_caching = run_gmm(trace, cache::GmmStrategy::kCachingOnly);
  cmp.gmm_eviction = run_gmm(trace, cache::GmmStrategy::kEvictionOnly);
  cmp.gmm_both = run_gmm(trace, cache::GmmStrategy::kCachingEviction);
  return cmp;
}

}  // namespace icgmm::core
