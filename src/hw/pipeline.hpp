// Latency models for the policy engines on the FPGA.
//
// GMM: the HLS kernel pipelines Gaussians with initiation interval 1, so
// one inference costs (pipeline fill + K) cycles. The fill constant covers
// trace decode, normalization multiplies, the exp LUT read latency and the
// paper's shift-register accumulation; 445 cycles reproduces the measured
// 3 us at K = 256, 233 MHz.
//
// LSTM: the recurrent dependence h_t -> h_{t+1} prevents pipelining across
// timesteps, and BRAM port limits bound the effective MAC rate near one
// per cycle regardless of DSP count. cycles ≈ MACs x 1.0256 reproduces the
// measured 46.3 ms for the 3 x 128 / seq-32 baseline.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hw/fpga_spec.hpp"

namespace icgmm::hw {

struct GmmPipelineSpec {
  std::size_t components = 256;
  std::uint32_t fill_cycles = 445;
  double clock_mhz = AlveoU50::kClockMhz;
};

struct LstmPipelineSpec {
  std::size_t macs = 0;  ///< from lstm_macs_per_inference()
  double cycles_per_mac = 1.0256;
  double clock_mhz = AlveoU50::kClockMhz;
};

constexpr std::uint64_t gmm_inference_cycles(const GmmPipelineSpec& s) noexcept {
  return s.fill_cycles + s.components;  // II = 1 accumulation over K
}

constexpr double gmm_inference_us(const GmmPipelineSpec& s) noexcept {
  return static_cast<double>(gmm_inference_cycles(s)) / s.clock_mhz;
}

constexpr std::uint64_t lstm_inference_cycles(const LstmPipelineSpec& s) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(s.macs) *
                                    s.cycles_per_mac);
}

constexpr double lstm_inference_ms(const LstmPipelineSpec& s) noexcept {
  return static_cast<double>(lstm_inference_cycles(s)) / s.clock_mhz / 1000.0;
}

}  // namespace icgmm::hw
