// FPGA device model. ICGMM is prototyped on a Xilinx Alveo U50 at 233 MHz
// (paper §5.1); Table 2 reports utilization against this device.
#pragma once

#include <cstdint>

namespace icgmm::hw {

/// One bundle of FPGA resources (BRAM36 tiles, DSP48 slices, LUTs, FFs).
struct Resources {
  std::uint32_t bram36 = 0;
  std::uint32_t dsp = 0;
  std::uint32_t lut = 0;
  std::uint32_t ff = 0;

  friend constexpr bool operator==(const Resources&, const Resources&) = default;

  constexpr Resources operator+(const Resources& o) const noexcept {
    return {bram36 + o.bram36, dsp + o.dsp, lut + o.lut, ff + o.ff};
  }
};

/// Xilinx Alveo U50 (xcu50-fsvh2104-2-e) totals and the design clock.
struct AlveoU50 {
  static constexpr Resources kTotal{1344, 5952, 871680, 1743360};
  static constexpr double kClockMhz = 233.0;
};

/// Fraction of the device consumed, per resource class.
struct Utilization {
  double bram = 0.0;
  double dsp = 0.0;
  double lut = 0.0;
  double ff = 0.0;
};

constexpr Utilization utilization(const Resources& used,
                                  const Resources& total = AlveoU50::kTotal) noexcept {
  return {
      static_cast<double>(used.bram36) / static_cast<double>(total.bram36),
      static_cast<double>(used.dsp) / static_cast<double>(total.dsp),
      static_cast<double>(used.lut) / static_cast<double>(total.lut),
      static_cast<double>(used.ff) / static_cast<double>(total.ff),
  };
}

}  // namespace icgmm::hw
