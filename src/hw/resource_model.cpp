#include "hw/resource_model.hpp"

namespace icgmm::hw {
namespace {

constexpr std::size_t kBram36Bytes = 4608;  // 36 Kbit

constexpr std::uint32_t ceil_div_u32(std::size_t a, std::size_t b) noexcept {
  return static_cast<std::uint32_t>((a + b - 1) / b);
}

// GMM engine calibration (matches Table 2 at K = 256, table = 1024):
constexpr std::uint32_t kGmmFifoBrams = 5;       // trace/score/rsp FIFOs
constexpr std::uint32_t kGmmDatapathDsp = 113;   // quadform+exp+accumulate
constexpr std::uint32_t kGmmBaseLut = 52000;     // control + datapath
constexpr std::uint32_t kGmmLutPerK_Num = 6353;  // shift-register slice
constexpr std::uint32_t kGmmBaseFf = 140000;
constexpr std::uint32_t kGmmFfPerK_Num = 12583;
constexpr std::uint32_t kGmmCalibK = 256;

// LSTM engine calibration (matches Table 2 at 3 x 128, seq 32):
constexpr std::uint32_t kLstmBufferBrams = 52;   // activations, gates, state
constexpr std::uint32_t kLstmDatapathDsp = 145;  // gate MAC array
constexpr std::uint32_t kLstmBaseLut = 36000;
constexpr std::uint32_t kLstmLutPerHL_Num = 49029;
constexpr std::uint32_t kLstmBaseFf = 40000;
constexpr std::uint32_t kLstmFfPerHL_Num = 63561;
constexpr std::uint32_t kLstmCalibHL = 384;  // hidden * layers at calibration

}  // namespace

std::size_t lstm_parameter_count(const LstmEngineSpec& s) noexcept {
  std::size_t count = 0;
  for (std::size_t l = 0; l < s.layers; ++l) {
    const std::size_t in = l == 0 ? s.input_dim : s.hidden;
    count += 4 * s.hidden * (in + s.hidden) + 4 * s.hidden;  // W + b
  }
  return count + s.hidden + 1;  // dense head
}

std::size_t lstm_macs_per_inference(const LstmEngineSpec& s) noexcept {
  std::size_t per_step = 0;
  for (std::size_t l = 0; l < s.layers; ++l) {
    const std::size_t in = l == 0 ? s.input_dim : s.hidden;
    per_step += 4 * s.hidden * (in + s.hidden);
  }
  return per_step * s.seq_len + s.hidden;
}

Resources estimate_gmm_engine(const GmmEngineSpec& spec) noexcept {
  Resources r;
  // Weight buffer: {pi, mu(2), inv-cov(3), log-norm} words per component,
  // plus the exp() lookup table — both one-time loaded from HBM (§4.1).
  const std::size_t weight_bytes =
      spec.components * 7 * spec.word_bytes + 4 * spec.word_bytes;
  const std::size_t table_bytes = spec.exp_table_entries * spec.word_bytes;
  r.bram36 = ceil_div_u32(weight_bytes, kBram36Bytes) +
             ceil_div_u32(table_bytes, kBram36Bytes) + kGmmFifoBrams;
  r.dsp = kGmmDatapathDsp;
  r.lut = kGmmBaseLut + static_cast<std::uint32_t>(
                            kGmmLutPerK_Num * spec.components / kGmmCalibK);
  r.ff = kGmmBaseFf + static_cast<std::uint32_t>(
                          kGmmFfPerK_Num * spec.components / kGmmCalibK);
  return r;
}

Resources estimate_lstm_engine(const LstmEngineSpec& spec) noexcept {
  Resources r;
  const std::size_t weight_bytes = lstm_parameter_count(spec) * spec.word_bytes;
  r.bram36 = ceil_div_u32(weight_bytes, kBram36Bytes) + kLstmBufferBrams;
  r.dsp = kLstmDatapathDsp;
  const std::size_t hl = spec.hidden * spec.layers;
  r.lut = kLstmBaseLut +
          static_cast<std::uint32_t>(kLstmLutPerHL_Num * hl / kLstmCalibHL);
  r.ff = kLstmBaseFf +
         static_cast<std::uint32_t>(kLstmFfPerHL_Num * hl / kLstmCalibHL);
  return r;
}

}  // namespace icgmm::hw
