// Analytic post-synthesis resource estimates for the two policy engines.
//
// The models are affine in the architecture knobs with coefficients
// calibrated so the paper's exact configurations land on Table 2's
// numbers (GMM K=256 -> 8/113/58353/152583; LSTM 3x128/seq32 ->
// 339/145/85029/103561), while scaling terms are physically grounded:
//   * memory (BRAM) scales with weight bytes at 4.5 KB per BRAM36,
//   * the DSP datapath is a fixed-width pipeline (independent of K / H),
//   * LUT/FF scale with the accumulation shift register (GMM) or the
//     gate array width (LSTM).
#pragma once

#include <cstddef>

#include "hw/fpga_spec.hpp"

namespace icgmm::hw {

struct GmmEngineSpec {
  std::size_t components = 256;        ///< K
  std::size_t exp_table_entries = 1024;
  std::size_t word_bytes = 4;          ///< fixed-point word width
};

struct LstmEngineSpec {
  std::size_t layers = 3;
  std::size_t hidden = 128;
  std::size_t input_dim = 2;
  std::size_t seq_len = 32;
  std::size_t word_bytes = 4;
};

/// Trainable-parameter count of the LSTM engine (weights + biases + head).
std::size_t lstm_parameter_count(const LstmEngineSpec& spec) noexcept;

/// MACs of one LSTM inference (gate matrices every timestep + head).
std::size_t lstm_macs_per_inference(const LstmEngineSpec& spec) noexcept;

Resources estimate_gmm_engine(const GmmEngineSpec& spec) noexcept;
Resources estimate_lstm_engine(const LstmEngineSpec& spec) noexcept;

}  // namespace icgmm::hw
