#include "lstm/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace icgmm::lstm {

Gradients::Gradients(const LstmNetwork& net) {
  dw.reserve(net.cells().size());
  db.reserve(net.cells().size());
  for (const LstmCell& cell : net.cells()) {
    dw.emplace_back(cell.w.rows(), cell.w.cols());
    db.emplace_back(cell.b.size(), 0.0);
  }
  dhead_w.assign(net.head_w().size(), 0.0);
}

void Gradients::zero() {
  for (Matrix& m : dw) m.fill(0.0);
  for (Vector& v : db) std::fill(v.begin(), v.end(), 0.0);
  std::fill(dhead_w.begin(), dhead_w.end(), 0.0);
  dhead_b = 0.0;
}

Trainer::Trainer(LstmNetwork& net, TrainConfig cfg)
    : net_(net), cfg_(cfg), rng_(cfg.seed) {
  std::size_t params = net.parameter_count();
  m_.assign(params, 0.0);
  v_.assign(params, 0.0);
}

double Trainer::accumulate_gradients(const TrainSample& sample,
                                     Gradients& grads) {
  const auto& cfg = net_.config();
  const std::size_t T = cfg.seq_len;
  const std::size_t H = cfg.hidden;
  const std::size_t L = cfg.layers;

  const double y = net_.forward(sample.sequence, /*keep_cache=*/true);
  const double err = y - sample.target;
  const double loss = 0.5 * err * err;

  const auto& caches = net_.caches();

  // dL/dh for each layer at the *current* timestep of the backward sweep,
  // and the carried dL/dc.
  std::vector<Vector> dh(L, Vector(H, 0.0));
  std::vector<Vector> dc(L, Vector(H, 0.0));

  // Head gradient feeds the top layer at the last timestep.
  const Vector& h_last = caches[L - 1][T - 1].h;
  for (std::size_t i = 0; i < H; ++i) {
    grads.dhead_w[i] += err * h_last[i];
    dh[L - 1][i] = err * net_.head_w()[i];
  }
  grads.dhead_b += err;

  Vector dpre(4 * H);
  for (std::size_t t = T; t-- > 0;) {
    // Top-down so a layer's input gradient can be handed to the layer below
    // at the same timestep.
    for (std::size_t l = L; l-- > 0;) {
      const StepCache& sc = caches[l][t];
      const LstmCell& cell = net_.cells()[l];
      const std::size_t in_dim = cell.w.cols() - H;

      for (std::size_t i = 0; i < H; ++i) {
        const double ig = sc.gates[i];
        const double fg = sc.gates[H + i];
        const double gg = sc.gates[2 * H + i];
        const double og = sc.gates[3 * H + i];
        const double tc = std::tanh(sc.c[i]);

        const double d_o = dh[l][i] * tc;
        const double d_c = dh[l][i] * og * (1.0 - tc * tc) + dc[l][i];
        const double d_i = d_c * gg;
        const double d_g = d_c * ig;
        const double d_f = d_c * sc.c_prev[i];
        dc[l][i] = d_c * fg;  // carried to t-1

        dpre[i] = d_i * dsigmoid_from_y(ig);
        dpre[H + i] = d_f * dsigmoid_from_y(fg);
        dpre[2 * H + i] = d_g * dtanh_from_y(gg);
        dpre[3 * H + i] = d_o * dsigmoid_from_y(og);
      }

      // h entering this step (recurrent input).
      const Vector* h_prev = t > 0 ? &caches[l][t - 1].h : nullptr;

      // dW += dpre (x) [x ; h_prev]; db += dpre; and propagate dxh.
      Vector dx(in_dim, 0.0);
      Vector dh_prev(H, 0.0);
      for (std::size_t r = 0; r < 4 * H; ++r) {
        const double g = dpre[r];
        if (g == 0.0) continue;
        grads.db[l][r] += g;
        Matrix& dwl = grads.dw[l];
        for (std::size_t c = 0; c < in_dim; ++c) {
          dwl(r, c) += g * sc.x[c];
          dx[c] += cell.w(r, c) * g;
        }
        for (std::size_t c = 0; c < H; ++c) {
          const double hp = h_prev ? (*h_prev)[c] : 0.0;
          dwl(r, in_dim + c) += g * hp;
          dh_prev[c] += cell.w(r, in_dim + c) * g;
        }
      }

      // Recurrent gradient to t-1 (overwrites: dh[l] was consumed).
      dh[l] = std::move(dh_prev);
      // Input gradient: to layer l-1's hidden output at the same t.
      if (l > 0) {
        assert(dx.size() == H);
        for (std::size_t i = 0; i < H; ++i) dh[l - 1][i] += dx[i];
      }
    }
  }
  return loss;
}

void Trainer::adam_step(const Gradients& grads, std::size_t batch_size) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  ++adam_t_;
  const double scale = 1.0 / static_cast<double>(batch_size);

  // Global-norm clip first.
  double norm2 = 0.0;
  auto visit = [&](auto&& fn) {
    for (std::size_t l = 0; l < grads.dw.size(); ++l) {
      for (double g : grads.dw[l].flat()) fn(g);
      for (double g : grads.db[l]) fn(g);
    }
    for (double g : grads.dhead_w) fn(g);
    fn(grads.dhead_b);
  };
  visit([&](double g) { norm2 += g * scale * g * scale; });
  const double norm = std::sqrt(norm2);
  const double clip =
      norm > cfg_.grad_clip && norm > 0.0 ? cfg_.grad_clip / norm : 1.0;

  const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));

  std::size_t idx = 0;
  auto update = [&](double& param, double grad_raw) {
    const double g = grad_raw * scale * clip;
    m_[idx] = kBeta1 * m_[idx] + (1.0 - kBeta1) * g;
    v_[idx] = kBeta2 * v_[idx] + (1.0 - kBeta2) * g * g;
    const double mhat = m_[idx] / bc1;
    const double vhat = v_[idx] / bc2;
    param -= cfg_.learning_rate * mhat / (std::sqrt(vhat) + kEps);
    ++idx;
  };

  for (std::size_t l = 0; l < net_.cells().size(); ++l) {
    LstmCell& cell = net_.cells()[l];
    auto wf = cell.w.flat();
    auto gf = grads.dw[l].flat();
    for (std::size_t i = 0; i < wf.size(); ++i) update(wf[i], gf[i]);
    for (std::size_t i = 0; i < cell.b.size(); ++i)
      update(cell.b[i], grads.db[l][i]);
  }
  for (std::size_t i = 0; i < net_.head_w().size(); ++i)
    update(net_.head_w()[i], grads.dhead_w[i]);
  update(net_.head_b(), grads.dhead_b);
  assert(idx == m_.size());
}

double Trainer::train_epoch(std::span<const TrainSample> samples) {
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng_.below(i)]);
  }

  Gradients grads(net_);
  double total_loss = 0.0;
  std::size_t in_batch = 0;
  for (std::size_t i : order) {
    total_loss += accumulate_gradients(samples[i], grads);
    if (++in_batch == cfg_.batch) {
      adam_step(grads, in_batch);
      grads.zero();
      in_batch = 0;
    }
  }
  if (in_batch > 0) adam_step(grads, in_batch);
  return samples.empty() ? 0.0
                         : total_loss / static_cast<double>(samples.size());
}

std::vector<double> Trainer::train(std::span<const TrainSample> samples) {
  std::vector<double> losses;
  losses.reserve(cfg_.epochs);
  for (std::uint32_t e = 0; e < cfg_.epochs; ++e) {
    losses.push_back(train_epoch(samples));
  }
  return losses;
}

std::vector<TrainSample> make_frequency_dataset(
    std::span<const trace::GmmSample> points, std::size_t seq_len,
    std::size_t horizon, std::size_t max_samples, std::uint64_t seed) {
  std::vector<TrainSample> out;
  if (points.size() < seq_len + horizon || max_samples == 0) return out;

  // Normalization box (same role as the GMM Normalizer).
  double pmin = points[0].page, pmax = points[0].page;
  double tmin = points[0].time, tmax = points[0].time;
  for (const auto& s : points) {
    pmin = std::min(pmin, s.page);
    pmax = std::max(pmax, s.page);
    tmin = std::min(tmin, s.time);
    tmax = std::max(tmax, s.time);
  }
  const double pscale = pmax > pmin ? 1.0 / (pmax - pmin) : 1.0;
  const double tscale = tmax > tmin ? 1.0 / (tmax - tmin) : 1.0;

  Rng rng(seed);
  const std::size_t last_start = points.size() - seq_len - horizon;
  out.reserve(max_samples);
  for (std::size_t k = 0; k < max_samples; ++k) {
    const std::size_t start = rng.below(last_start + 1);
    TrainSample sample;
    sample.sequence.reserve(seq_len * 2);
    for (std::size_t i = start; i < start + seq_len; ++i) {
      sample.sequence.push_back((points[i].page - pmin) * pscale);
      sample.sequence.push_back((points[i].time - tmin) * tscale);
    }
    const double target_page = points[start + seq_len - 1].page;
    std::size_t freq = 0;
    for (std::size_t i = start + seq_len; i < start + seq_len + horizon; ++i) {
      if (points[i].page == target_page) ++freq;
    }
    sample.target =
        static_cast<double>(freq) / static_cast<double>(horizon);
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace icgmm::lstm
