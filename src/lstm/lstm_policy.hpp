// Adapter exposing the LSTM as a cache-policy scorer (same ScoreFn shape
// the GMM policy consumes), so policy *quality* can be compared head-to-
// head on identical cache simulations — the comparison behind Table 2's
// narrative that a lightweight LSTM struggles to encode long traces.
#pragma once

#include <deque>
#include <memory>

#include "cache/policies/gmm_policy.hpp"
#include "lstm/lstm.hpp"

namespace icgmm::lstm {

/// Stateful scorer: keeps the last seq_len (page, time) pairs observed and
/// scores the page a request ends the window at. NOT thread-safe (neither
/// is the hardware engine — one trace FIFO).
class LstmScorer {
 public:
  struct Normalization {
    double p_offset = 0.0, p_scale = 1.0;
    double t_offset = 0.0, t_scale = 1.0;
  };

  /// The network must outlive the scorer.
  LstmScorer(LstmNetwork& net, Normalization norm);

  /// Observes a request and returns the network's frequency score for it.
  double observe_and_score(PageIndex page, Timestamp time);

  /// Wraps this scorer as a cache::ScoreFn. The lambda holds a reference —
  /// keep the scorer alive for the cache's lifetime.
  cache::ScoreFn as_score_fn();

  std::uint64_t inferences() const noexcept { return inferences_; }

 private:
  LstmNetwork& net_;
  Normalization norm_;
  std::deque<double> window_;  ///< interleaved (p, t), newest at back
  std::uint64_t inferences_ = 0;
};

}  // namespace icgmm::lstm
