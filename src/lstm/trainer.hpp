// BPTT + Adam trainer for the LSTM baseline, with dataset construction
// from trace samples (predict the near-future access frequency of the page
// a sequence ends at — the same target the GMM models via density).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lstm/lstm.hpp"
#include "trace/preprocess.hpp"

namespace icgmm::lstm {

struct TrainSample {
  std::vector<double> sequence;  ///< seq_len x input_dim, row-major
  double target = 0.0;           ///< normalized future access frequency
};

/// Gradient accumulator shaped like the network.
struct Gradients {
  std::vector<Matrix> dw;
  std::vector<Vector> db;
  Vector dhead_w;
  double dhead_b = 0.0;

  explicit Gradients(const LstmNetwork& net);
  void zero();
};

struct TrainConfig {
  std::uint32_t epochs = 10;
  double learning_rate = 1e-3;
  double grad_clip = 5.0;     ///< global-norm clip
  std::uint32_t batch = 32;   ///< samples per Adam step
  std::uint64_t seed = 0xada3ull;
};

class Trainer {
 public:
  /// The network must outlive the trainer.
  Trainer(LstmNetwork& net, TrainConfig cfg = {});

  /// Accumulates d(0.5*(y-target)^2)/dparams into `grads`; returns the loss.
  double accumulate_gradients(const TrainSample& sample, Gradients& grads);

  /// One pass over the dataset (shuffled); returns mean loss.
  double train_epoch(std::span<const TrainSample> samples);

  /// Full training run; returns per-epoch mean losses.
  std::vector<double> train(std::span<const TrainSample> samples);

 private:
  void adam_step(const Gradients& grads, std::size_t batch_size);

  LstmNetwork& net_;
  TrainConfig cfg_;
  Rng rng_;
  // Adam moments, flattened in the same order as the parameters.
  std::vector<double> m_;
  std::vector<double> v_;
  std::uint64_t adam_t_ = 0;
};

/// Builds (sequence -> future frequency) samples from Algorithm-1 processed
/// trace points. The target for the sequence ending at index i is the count
/// of accesses to page(i) within the next `horizon` requests, divided by
/// `horizon`. Sequences are normalized with the bounding box of `points`.
std::vector<TrainSample> make_frequency_dataset(
    std::span<const trace::GmmSample> points, std::size_t seq_len,
    std::size_t horizon, std::size_t max_samples, std::uint64_t seed);

}  // namespace icgmm::lstm
