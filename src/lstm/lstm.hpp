// LSTM cache-policy baseline (paper §5.3 / Table 2): a 3-layer LSTM with
// hidden dimension 128 over input sequences of length 32, with a dense
// regression head that scores the future access frequency of the page the
// sequence ends at. Mirrors the designs of DeepCache [13] / Glider [14].
#pragma once

#include <cstddef>
#include <vector>

#include "lstm/tensor.hpp"

namespace icgmm::lstm {

struct LstmConfig {
  std::size_t input_dim = 2;   ///< (normalized page, normalized timestamp)
  std::size_t hidden = 128;
  std::size_t layers = 3;
  std::size_t seq_len = 32;
  std::uint64_t seed = 0x157f00dull;
};

/// One LSTM layer: gates [i f g o] stacked row-wise in W (4H x (I+H)).
struct LstmCell {
  Matrix w;   ///< 4H x (input+hidden)
  Vector b;   ///< 4H

  void init(std::size_t input, std::size_t hidden, Rng& rng);
};

/// Per-timestep activations kept for BPTT.
struct StepCache {
  Vector x;       ///< layer input
  Vector gates;   ///< post-activation [i f g o]
  Vector c_prev;  ///< cell state entering the step
  Vector c;       ///< cell state leaving the step
  Vector h;       ///< hidden output
};

class LstmNetwork {
 public:
  explicit LstmNetwork(LstmConfig cfg = {});

  const LstmConfig& config() const noexcept { return cfg_; }

  /// Scores one sequence (seq_len x input_dim, row-major). Also fills the
  /// step caches when `keep_cache` (training).
  double forward(std::span<const double> sequence, bool keep_cache = false);

  /// Total trainable parameters.
  std::size_t parameter_count() const noexcept;

  /// Multiply-accumulates for one inference — the quantity the FPGA
  /// pipeline model converts to latency (Table 2).
  std::size_t macs_per_inference() const noexcept;

  std::vector<LstmCell>& cells() noexcept { return cells_; }
  const std::vector<LstmCell>& cells() const noexcept { return cells_; }
  Vector& head_w() noexcept { return head_w_; }
  const Vector& head_w() const noexcept { return head_w_; }
  double& head_b() noexcept { return head_b_; }
  double head_b() const noexcept { return head_b_; }

  /// Step caches per layer per timestep, valid after forward(keep_cache).
  const std::vector<std::vector<StepCache>>& caches() const noexcept {
    return caches_;
  }

 private:
  LstmConfig cfg_;
  std::vector<LstmCell> cells_;
  Vector head_w_;
  double head_b_ = 0.0;
  std::vector<std::vector<StepCache>> caches_;  // [layer][t]
};

}  // namespace icgmm::lstm
