#include "lstm/lstm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace icgmm::lstm {

void LstmCell::init(std::size_t input, std::size_t hidden, Rng& rng) {
  w = Matrix(4 * hidden, input + hidden);
  w.init_xavier(rng);
  b.assign(4 * hidden, 0.0);
  // Standard trick: forget-gate bias starts positive so early training
  // doesn't wash out state.
  for (std::size_t i = hidden; i < 2 * hidden; ++i) b[i] = 1.0;
}

LstmNetwork::LstmNetwork(LstmConfig cfg) : cfg_(cfg) {
  if (cfg_.layers == 0 || cfg_.hidden == 0 || cfg_.input_dim == 0 ||
      cfg_.seq_len == 0) {
    throw std::invalid_argument("LstmNetwork: degenerate config");
  }
  Rng rng(cfg_.seed);
  cells_.resize(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    const std::size_t in = l == 0 ? cfg_.input_dim : cfg_.hidden;
    cells_[l].init(in, cfg_.hidden, rng);
  }
  head_w_.assign(cfg_.hidden, 0.0);
  Matrix tmp(1, cfg_.hidden);
  tmp.init_xavier(rng);
  for (std::size_t i = 0; i < cfg_.hidden; ++i) head_w_[i] = tmp(0, i);
}

double LstmNetwork::forward(std::span<const double> sequence, bool keep_cache) {
  const std::size_t T = cfg_.seq_len;
  const std::size_t H = cfg_.hidden;
  assert(sequence.size() == T * cfg_.input_dim);

  if (keep_cache) {
    caches_.assign(cfg_.layers, std::vector<StepCache>(T));
  }

  std::vector<Vector> h(cfg_.layers, Vector(H, 0.0));
  std::vector<Vector> c(cfg_.layers, Vector(H, 0.0));
  Vector xin;
  Vector pre(4 * H);

  for (std::size_t t = 0; t < T; ++t) {
    xin.assign(sequence.begin() + static_cast<std::ptrdiff_t>(t * cfg_.input_dim),
               sequence.begin() + static_cast<std::ptrdiff_t>((t + 1) * cfg_.input_dim));
    for (std::size_t l = 0; l < cfg_.layers; ++l) {
      LstmCell& cell = cells_[l];
      const std::size_t in_dim = cell.w.cols() - H;
      assert(xin.size() == in_dim);
      (void)in_dim;

      // pre = W [x; h] + b
      Vector xh(xin);
      xh.insert(xh.end(), h[l].begin(), h[l].end());
      matvec(cell.w, xh, pre);
      for (std::size_t i = 0; i < 4 * H; ++i) pre[i] += cell.b[i];

      StepCache* sc = keep_cache ? &caches_[l][t] : nullptr;
      if (sc) {
        sc->x = xin;
        sc->c_prev = c[l];
        sc->gates.resize(4 * H);
      }

      Vector h_new(H);
      for (std::size_t i = 0; i < H; ++i) {
        const double ig = sigmoid(pre[i]);
        const double fg = sigmoid(pre[H + i]);
        const double gg = std::tanh(pre[2 * H + i]);
        const double og = sigmoid(pre[3 * H + i]);
        c[l][i] = fg * c[l][i] + ig * gg;
        h_new[i] = og * std::tanh(c[l][i]);
        if (sc) {
          sc->gates[i] = ig;
          sc->gates[H + i] = fg;
          sc->gates[2 * H + i] = gg;
          sc->gates[3 * H + i] = og;
        }
      }
      h[l] = std::move(h_new);
      if (sc) {
        sc->c = c[l];
        sc->h = h[l];
      }
      xin = h[l];  // input to the next layer
    }
  }
  return dot(head_w_, h.back()) + head_b_;
}

std::size_t LstmNetwork::parameter_count() const noexcept {
  std::size_t count = 0;
  for (const LstmCell& cell : cells_) count += cell.w.size() + cell.b.size();
  return count + head_w_.size() + 1;
}

std::size_t LstmNetwork::macs_per_inference() const noexcept {
  // Each timestep multiplies W (4H x (I+H)) by [x; h] per layer; the dense
  // head adds H MACs once.
  std::size_t per_step = 0;
  for (const LstmCell& cell : cells_) per_step += cell.w.size();
  return per_step * cfg_.seq_len + head_w_.size();
}

}  // namespace icgmm::lstm
