#include "lstm/tensor.hpp"

#include <cassert>
#include <cmath>

namespace icgmm::lstm {

void matvec(const Matrix& m, std::span<const double> x, std::span<double> y) {
  assert(x.size() == m.cols() && y.size() == m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) acc += m(r, c) * x[c];
    y[r] = acc;
  }
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }

double dsigmoid_from_y(double y) noexcept { return y * (1.0 - y); }

double dtanh_from_y(double y) noexcept { return 1.0 - y * y; }

}  // namespace icgmm::lstm
