// Minimal dense linear algebra for the LSTM baseline. Row-major matrices,
// no BLAS dependency — sizes here are tiny (hidden 128) and the point of
// the baseline is cost accounting, not training throughput.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace icgmm::lstm {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<double> flat() noexcept { return data_; }
  std::span<const double> flat() const noexcept { return data_; }

  void fill(double v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// Xavier/Glorot uniform initialization.
  void init_xavier(Rng& rng) {
    const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
    for (double& v : data_) v = rng.uniform(-limit, limit);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

using Vector = std::vector<double>;

/// y = M x (y sized to M.rows()).
void matvec(const Matrix& m, std::span<const double> x, std::span<double> y);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

double dot(std::span<const double> a, std::span<const double> b);

double sigmoid(double x) noexcept;
double dsigmoid_from_y(double y) noexcept;  ///< derivative given sigmoid(x)
double dtanh_from_y(double y) noexcept;     ///< derivative given tanh(x)

}  // namespace icgmm::lstm
