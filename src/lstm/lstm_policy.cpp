#include "lstm/lstm_policy.hpp"

#include <vector>

namespace icgmm::lstm {

LstmScorer::LstmScorer(LstmNetwork& net, Normalization norm)
    : net_(net), norm_(norm) {}

double LstmScorer::observe_and_score(PageIndex page, Timestamp time) {
  const double p = (static_cast<double>(page) - norm_.p_offset) * norm_.p_scale;
  const double t = (static_cast<double>(time) - norm_.t_offset) * norm_.t_scale;
  window_.push_back(p);
  window_.push_back(t);
  const std::size_t need = net_.config().seq_len * 2;
  while (window_.size() > need) window_.pop_front();

  // Until the window fills, left-pad with the oldest observation.
  std::vector<double> seq;
  seq.reserve(need);
  for (std::size_t i = window_.size(); i < need; i += 2) {
    seq.push_back(window_[0]);
    seq.push_back(window_[1]);
  }
  seq.insert(seq.end(), window_.begin(), window_.end());

  ++inferences_;
  return net_.forward(seq);
}

cache::ScoreFn LstmScorer::as_score_fn() {
  return [this](PageIndex page, Timestamp time) {
    return observe_and_score(page, time);
  };
}

}  // namespace icgmm::lstm
